"""Tests for rail-requirement analysis, polarity assignment and the dual-rail mapping.

The full-adder walk-through of the paper (Sections 3.1.1-3.1.5, Figures 4-5)
is used as the golden reference: the cell, splitter and JJ counts of every
optimisation step are known exactly.
"""

import pytest

from repro.aig import lit_not, network_to_aig, optimize
from repro.core import (
    CellKind,
    FlowOptions,
    Rail,
    analyze_rails,
    assign_output_polarities,
    default_library,
    direct_mapping_analysis,
    equation1_splitters,
    map_combinational,
    positive_polarities,
    sinks_of,
    synthesize_xsfq,
)
from repro.eval import full_adder_network
from repro.eval.paper_data import FULL_ADDER_STEPS, FULL_ADDER_MIN_AIG_NODES


@pytest.fixture(scope="module")
def fa_aig():
    return optimize(network_to_aig(full_adder_network()), effort="high")


class TestRailAnalysis:
    def test_minimal_full_adder_has_seven_nodes(self, fa_aig):
        assert fa_aig.num_ands == FULL_ADDER_MIN_AIG_NODES

    def test_direct_mapping_penalty_is_100_percent(self, fa_aig):
        analysis = direct_mapping_analysis(fa_aig)
        assert analysis.duplication_penalty == pytest.approx(1.0)
        assert analysis.num_cells == 2 * fa_aig.num_ands

    def test_positive_polarity_analysis_matches_figure5i(self, fa_aig):
        analysis = analyze_rails(fa_aig, positive_polarities(fa_aig))
        assert analysis.num_cells == FULL_ADDER_STEPS["polarity"][0]  # 11 cells

    def test_heuristic_matches_figure5ii(self, fa_aig):
        _, analysis = assign_output_polarities(fa_aig)
        assert analysis.num_cells == FULL_ADDER_STEPS["domino"][0]  # 10 cells

    def test_heuristic_never_worse_than_all_positive(self, fa_aig):
        positive = analyze_rails(fa_aig)
        _, best = assign_output_polarities(fa_aig)
        assert best.num_cells <= positive.num_cells

    def test_required_rails_subset_of_both(self, fa_aig):
        analysis = analyze_rails(fa_aig)
        for rails in analysis.required.values():
            assert rails <= {Rail.POS, Rail.NEG}

    def test_sinks_include_latch_next_state(self):
        from repro.netlist import NetworkBuilder

        b = NetworkBuilder("seq")
        d = b.input("d")
        q = b.dff(b.xor(d, b.input("e")), name="q")
        b.output(q, "out")
        aig = network_to_aig(b.finish())
        names = [s.name for s in sinks_of(aig)]
        assert "out" in names and "q$next" in names


class TestDualRailMapping:
    @pytest.mark.parametrize(
        "step,options",
        [
            ("direct", FlowOptions(effort="none", direct_mapping=True)),
            ("aig", FlowOptions(effort="high", direct_mapping=True)),
            ("polarity", FlowOptions(effort="high", optimize_polarity=False)),
            ("domino", FlowOptions(effort="high", optimize_polarity=True)),
        ],
    )
    def test_full_adder_walkthrough_matches_paper(self, step, options):
        cells, splitters, jj, jj_ptl = FULL_ADDER_STEPS[step]
        result = synthesize_xsfq(full_adder_network(), options)
        assert result.num_la_fa == cells
        assert result.num_splitters == splitters
        assert result.jj_count(False) == jj
        assert result.jj_count(True) == jj_ptl

    def test_equation1_matches_explicit_splitters(self, fa_aig):
        analysis = analyze_rails(fa_aig)
        netlist = map_combinational(fa_aig, analysis)
        used_input_rails = sum(len(r) for n, r in analysis.leaf_rails.items() if n != 0)
        outputs = len(netlist.output_ports)
        assert netlist.num_splitters == equation1_splitters(
            netlist.num_logic_cells, outputs, used_input_rails
        )

    def test_netlist_validates_and_single_fanout(self, fa_aig):
        netlist = map_combinational(fa_aig, analyze_rails(fa_aig))
        netlist.validate()
        consumers = netlist.net_consumers()
        assert all(len(users) <= 1 for users in consumers.values())

    def test_without_splitters_multi_fanout_exists(self, fa_aig):
        netlist = map_combinational(fa_aig, analyze_rails(fa_aig), insert_fanout_splitters=False)
        consumers = netlist.net_consumers()
        assert any(len(users) > 1 for users in consumers.values())

    def test_chain_splitter_style(self, fa_aig):
        balanced = map_combinational(fa_aig, analyze_rails(fa_aig), splitter_style="balanced")
        chained = map_combinational(fa_aig, analyze_rails(fa_aig), splitter_style="chain")
        # Same splitter count either way; only the tree topology differs.
        assert balanced.num_splitters == chained.num_splitters
        assert chained.logic_depth(True) >= balanced.logic_depth(True)

    def test_depth_and_critical_path(self, fa_aig):
        netlist = map_combinational(fa_aig, analyze_rails(fa_aig))
        assert netlist.logic_depth(False) == fa_aig.depth()
        assert netlist.logic_depth(True) >= netlist.logic_depth(False)
        lib = default_library(False)
        assert netlist.critical_path_delay(lib) >= fa_aig.depth() * lib.delay(CellKind.LA)

    def test_inversion_is_free(self):
        """Inverting an output must not change the LA/FA cell count (wire twist)."""
        from repro.netlist import NetworkBuilder

        def build(invert):
            b = NetworkBuilder("inv")
            x, y = b.input("x"), b.input("y")
            sig = b.and_(x, y)
            if invert:
                sig = b.not_(sig)
            b.output(sig, "o")
            return b.finish()

        plain = synthesize_xsfq(build(False), FlowOptions(effort="none", optimize_polarity=False))
        inverted = synthesize_xsfq(build(True), FlowOptions(effort="none", optimize_polarity=False))
        assert plain.num_la_fa == inverted.num_la_fa == 1

    def test_counts_by_kind_totals(self, fa_aig):
        netlist = map_combinational(fa_aig, analyze_rails(fa_aig))
        counts = netlist.counts_by_kind()
        assert counts[CellKind.LA] + counts[CellKind.FA] == netlist.num_logic_cells
        assert counts[CellKind.SPLITTER] == netlist.num_splitters
