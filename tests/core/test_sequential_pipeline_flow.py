"""Tests for sequential mapping, pipelining, the full flow and Liberty export."""

import pytest

from repro.aig import check_equivalence, network_to_aig
from repro.core import (
    CellKind,
    FlowOptions,
    default_library,
    legacy_dro_flipflop_cost,
    parse_liberty,
    pipeline_combinational,
    synthesize_xsfq,
    write_liberty,
)
from repro.eval import counter_network, full_adder_network
from repro.circuits import ripple_carry_adder, traffic_light_controller


@pytest.fixture(scope="module")
def counter_result():
    return synthesize_xsfq(counter_network(3), FlowOptions(effort="medium"))


@pytest.fixture(scope="module")
def counter_result_no_retime():
    return synthesize_xsfq(counter_network(3), FlowOptions(effort="medium", retime=False))


class TestSequentialMapping:
    def test_every_flipflop_gets_a_preloaded_droc(self, counter_result):
        plain, preloaded = counter_result.droc_counts
        assert preloaded == 3  # one per logical flip-flop
        assert plain >= 1      # the retimed second rank

    def test_without_retiming_drocs_come_in_pairs(self, counter_result_no_retime):
        plain, preloaded = counter_result_no_retime.droc_counts
        assert preloaded == 3
        assert plain == 3

    def test_trigger_infrastructure_present(self, counter_result):
        netlist = counter_result.netlist
        assert netlist.clock_nets == ["clk"]
        assert netlist.trigger_nets == ["trg"]
        assert netlist.num_cells(CellKind.MERGER) == 1

    def test_netlist_validates(self, counter_result, counter_result_no_retime):
        counter_result.netlist.validate()
        counter_result_no_retime.netlist.validate()

    def test_retiming_balances_stage_depths(self, counter_result):
        info = counter_result.sequential_info
        assert info is not None and info.cut_level is not None
        assert len(info.stage_depths) == 2
        total = sum(info.stage_depths)
        assert max(info.stage_depths) <= total - min(info.stage_depths) + 1

    def test_clock_frequency_reported(self, counter_result):
        circuit_ghz, arch_ghz = counter_result.clock_frequencies_ghz()
        assert circuit_ghz > 0
        assert arch_ghz == pytest.approx(circuit_ghz / 2)

    def test_sequential_costs_less_than_legacy_dro_quad(self, counter_result_no_retime):
        """The DROC-pair flip-flop must beat the original 4-DRO construction.

        The paper's Figure 6i comparison is about the flip-flop construction
        itself, i.e. the back-to-back DROC pair.  The retimed variant trades
        extra mid-rank registers (one per cut-crossing signal, needed for
        phase alignment) for balanced stage depths, so its storage cost is
        not bounded by the per-flip-flop claim.
        """
        lib = default_library(False)
        plain, preloaded = counter_result_no_retime.droc_counts
        droc_jj = plain * lib.jj_count(CellKind.DROC) + preloaded * lib.jj_count(CellKind.DROC_PRELOAD)
        assert droc_jj < legacy_dro_flipflop_cost(3, lib) + 3 * lib.jj_count(CellKind.DROC)

    def test_next_state_logic_preserved(self, counter_result):
        """The optimised AIG inside the result stays equivalent to the source."""
        reference = network_to_aig(counter_network(3))
        assert check_equivalence(reference, counter_result.aig).equivalent


class TestPipelining:
    @pytest.fixture(scope="class")
    def adder_aig(self):
        from repro.aig import optimize

        return optimize(network_to_aig(ripple_carry_adder(8)), effort="low")

    def test_ranks_are_twice_the_stages(self, adder_aig):
        result = pipeline_combinational(adder_aig, stages=2)
        assert result.ranks == 4
        assert len(result.drocs_per_rank) == 4
        assert sum(result.drocs_per_rank) == result.plain + result.preloaded

    def test_first_rank_of_each_pair_is_preloaded(self, adder_aig):
        result = pipeline_combinational(adder_aig, stages=1)
        assert result.preloaded == result.drocs_per_rank[0]
        assert result.plain == result.drocs_per_rank[1]

    def test_zero_stages_has_no_storage(self, adder_aig):
        result = pipeline_combinational(adder_aig, stages=0)
        assert result.plain == result.preloaded == 0
        assert result.netlist.num_drocs == (0, 0)

    def test_pipelining_raises_frequency_and_cuts_depth(self, adder_aig):
        flat = synthesize_xsfq(ripple_carry_adder(8), FlowOptions(effort="low"))
        piped = synthesize_xsfq(ripple_carry_adder(8), FlowOptions(effort="low", pipeline_stages=2))
        assert piped.logic_depth(False) < flat.logic_depth(False)
        assert piped.clock_frequencies_ghz()[0] > flat.clock_frequencies_ghz()[0]
        assert piped.jj_count(False) > flat.jj_count(False)

    def test_rejects_sequential_design(self):
        aig = network_to_aig(counter_network(2))
        from repro.core import MappingError

        with pytest.raises(MappingError):
            pipeline_combinational(aig, stages=1)


class TestFlow:
    def test_combinational_breakdown_keys(self):
        result = synthesize_xsfq(full_adder_network(), FlowOptions(effort="high"))
        breakdown = result.component_breakdown()
        for key in ("circuit", "la_fa", "splitters", "duplication", "jj", "depth"):
            assert key in breakdown
        assert result.droc_counts == (0, 0)

    def test_flow_accepts_aig_input(self):
        aig = network_to_aig(full_adder_network())
        result = synthesize_xsfq(aig, FlowOptions(effort="low"), name="fa_from_aig")
        assert result.name == "fa_from_aig"

    def test_flow_on_sequential_benchmark(self):
        result = synthesize_xsfq(traffic_light_controller(num_ff=9), FlowOptions(effort="low"))
        plain, preloaded = result.droc_counts
        assert preloaded == 9
        assert result.jj_count(False) > 0
        result.netlist.validate()

    def test_effort_none_skips_optimisation(self):
        aig = network_to_aig(full_adder_network())
        result = synthesize_xsfq(aig, FlowOptions(effort="none", optimize_polarity=False))
        assert result.aig.num_ands == aig.cleanup().num_ands

    def test_ptl_mode_costs_more(self):
        result = synthesize_xsfq(full_adder_network(), FlowOptions(effort="high"))
        assert result.jj_count(True) > result.jj_count(False)


class TestLiberty:
    def test_roundtrip_contains_all_cells(self):
        text = write_liberty(default_library(False))
        cells = parse_liberty(text)
        for kind in (CellKind.LA, CellKind.FA, CellKind.SPLITTER, CellKind.DROC):
            assert kind.value in cells

    def test_area_carries_jj_count_and_delays_match(self):
        lib = default_library(False)
        cells = parse_liberty(write_liberty(lib))
        assert cells["LA"].area == lib.jj_count(CellKind.LA)
        assert any(abs(d - lib.delay(CellKind.LA)) < 1e-6 for d in cells["LA"].delays_ps.values())

    def test_clocked_cells_marked(self):
        cells = parse_liberty(write_liberty(default_library(False)))
        assert cells["DROC"].clocked
        assert not cells["LA"].clocked

    def test_ptl_library_export(self):
        cells = parse_liberty(write_liberty(default_library(True), name="xsfq_ptl"))
        assert cells["LA"].area == 12
