"""CoverageMap algebra: the laws the soak/shard machinery relies on.

Property-style tests over seeded random maps: ``add`` is monotone,
``merge`` is associative/commutative/idempotent (a pure set union), and
serialisation is canonical — equal maps produce byte-identical JSON.
"""

import random

import pytest

from repro.cov import CoverageMap
from repro.cov.map import COV_SCHEMA

FEATURES = [f"feat:{i}" for i in range(12)]
UNITS = [f"unit{i:02d}" for i in range(8)]


def _random_map(seed: int, events: int = 30) -> CoverageMap:
    rng = random.Random(seed)
    cov = CoverageMap()
    for _ in range(events):
        sample = rng.sample(FEATURES, rng.randint(1, 4))
        cov.add(sample, rng.choice(UNITS))
    return cov


class TestAdd:
    def test_add_is_monotone(self):
        rng = random.Random(7)
        cov = CoverageMap()
        seen: dict = {}
        for _ in range(60):
            sample = rng.sample(FEATURES, rng.randint(1, 4))
            unit = rng.choice(UNITS)
            before = {f: set(cov.units(f)) for f in cov.features()}
            cov.add(sample, unit)
            for feature, units in before.items():
                assert units <= set(cov.units(feature))
            for feature in sample:
                seen.setdefault(feature, set()).add(unit)
                assert unit in cov.units(feature)
        assert {f: set(cov.units(f)) for f in cov.features()} == seen

    def test_add_returns_only_fresh_features(self):
        cov = CoverageMap()
        assert cov.add(["a", "b"], "u1") == ["a", "b"]
        assert cov.add(["b", "c"], "u2") == ["c"]
        assert cov.add(["a", "b", "c"], "u3") == []

    def test_new_features_does_not_record(self):
        cov = CoverageMap()
        cov.add(["a"], "u1")
        assert cov.new_features(["a", "b", "b"]) == ["b"]
        assert "b" not in cov
        assert len(cov) == 1

    def test_duplicate_units_count_once(self):
        cov = CoverageMap()
        cov.add(["a"], "u1")
        cov.add(["a"], "u1")
        cov.add(["a"], "u2")
        assert cov.count("a") == 2


class TestMergeAlgebra:
    @pytest.mark.parametrize("seed", range(5))
    def test_merge_commutative(self, seed):
        a, b = _random_map(seed), _random_map(seed + 100)
        assert a.merge(b) == b.merge(a)

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_associative(self, seed):
        a, b, c = (_random_map(seed + k * 100) for k in range(3))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_idempotent(self, seed):
        a = _random_map(seed)
        assert a.merge(a) == a

    def test_merge_is_pure(self):
        a, b = _random_map(1), _random_map(2)
        a_json, b_json = a.canonical_json(), b.canonical_json()
        a.merge(b)
        assert a.canonical_json() == a_json
        assert b.canonical_json() == b_json

    def test_merge_unions_unit_sets(self):
        a, b = CoverageMap(), CoverageMap()
        a.add(["f"], "u1")
        b.add(["f"], "u1")
        b.add(["f", "g"], "u2")
        merged = a.merge(b)
        assert merged.units("f") == ["u1", "u2"]
        assert merged.count("f") == 2  # u1 seen by both operands: one unit
        assert merged.units("g") == ["u2"]

    def test_merge_all_equals_pairwise_folds(self):
        maps = [_random_map(seed) for seed in range(4)]
        folded = maps[0]
        for other in maps[1:]:
            folded = folded.merge(other)
        assert CoverageMap.merge_all(maps) == folded


class TestSerialisation:
    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip_byte_identical(self, seed):
        cov = _random_map(seed)
        text = cov.canonical_json()
        again = CoverageMap.from_json(text)
        assert again == cov
        assert again.canonical_json() == text

    def test_insertion_order_does_not_leak(self):
        a, b = CoverageMap(), CoverageMap()
        a.add(["x"], "u2")
        a.add(["w", "x"], "u1")
        b.add(["w"], "u1")
        b.add(["x"], "u1")
        b.add(["x"], "u2")
        assert a == b
        assert a.canonical_json() == b.canonical_json()

    def test_schema_is_stamped_and_checked(self):
        cov = _random_map(0)
        data = cov.to_dict()
        assert data["schema"] == COV_SCHEMA
        data["schema"] = "repro-cov/999"
        with pytest.raises(ValueError, match="schema"):
            CoverageMap.from_dict(data)
