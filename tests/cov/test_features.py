"""Feature extraction: buckets, topology classes, and the universe."""

import pytest

from repro.cov.features import (
    BUCKET_LABELS,
    FAULT_STATUSES,
    count_bucket,
    corpus_features,
    fault_features,
    feature_universe,
    generation_features,
    load_corpus_specs,
    region_features,
    region_quartile,
    run_side_features,
    structural_features,
    unit_digest,
)
from repro.gen import GenSpec, generate_specs
from repro.netlist import NetworkBuilder


class TestBuckets:
    def test_logarithmic_labels(self):
        expected = {0: "0", 1: "1", 2: "2", 3: "3-4", 4: "3-4", 5: "5-8",
                    8: "5-8", 9: "9-16", 16: "9-16", 17: "17-32", 32: "17-32",
                    33: ">32", 1000: ">32"}
        for value, label in expected.items():
            assert count_bucket(value) == label
            assert label in BUCKET_LABELS

    def test_region_quartiles_partition_the_range(self):
        lo, hi = 8, 40
        quartiles = [region_quartile(lo, hi, v) for v in range(lo, hi + 1)]
        assert quartiles == sorted(quartiles)
        assert set(quartiles) == {0, 1, 2, 3}
        assert region_quartile(5, 5, 5) == 0  # degenerate range

    def test_unit_digest_is_short_hex_and_flow_sensitive(self):
        a = unit_digest("gen:dag:gates=10:s1", "default")
        b = unit_digest("gen:dag:gates=10:s1", "direct")
        assert a != b
        assert len(a) == 12 and int(a, 16) >= 0


class TestStructural:
    def test_combinational_network_features(self):
        build = NetworkBuilder("tiny")
        a, b = build.input("a"), build.input("b")
        build.output(build.and_(a, b))
        features = structural_features(build.finish())
        assert "depth:d1" in features
        assert "alpha:and:n1:d1" in features
        assert "latch:n0:none" in features

    def test_latch_topology_classes(self):
        # Independent: latch fed by a primary input only.
        build = NetworkBuilder("indep")
        build.output(build.dff(build.input("a"), name="q"))
        assert "latch:n1:indep" in structural_features(build.finish())

        # Self: the latch's next-state cone reaches the latch itself.
        build = NetworkBuilder("selfloop")
        nxt = build.xor(build.input("a"), "q")  # forward-references q
        build.output(build.network.add_latch("q", nxt))
        assert "latch:n1:self" in structural_features(build.finish())

        # Cross: two latches feeding each other (and nothing else).
        build = NetworkBuilder("cross")
        build.output(build.network.add_latch("q0", "q1"))
        build.output(build.network.add_latch("q1", "q0"))
        assert "latch:n2:cross" in structural_features(build.finish())

    def test_generated_features_live_in_the_universe(self):
        universe = feature_universe(["default"])
        enumerable = {
            feature
            for group in ("depth", "alpha", "latch", "region", "corpus")
            for feature in universe[group]
        }
        for spec in generate_specs(12, seed=3):
            for feature in generation_features(spec):
                assert feature in enumerable, feature


class TestRegionAndCorpus:
    def test_region_features_cover_every_fuzz_parameter(self):
        spec = GenSpec.create("dag", seed=5)
        features = region_features(spec)
        names = {f.split("=")[0] for f in features}
        assert len(features) == len(dict(spec.info().fuzz_ranges))
        assert all(f.startswith("region:dag:") for f in features)
        assert len(names) == len(features)

    def test_corpus_entry_is_near_itself(self):
        corpus = load_corpus_specs()
        if not corpus:
            pytest.skip("no pinned corpus present")
        name, entry = corpus[0]
        assert f"corpus:near:{name}" in corpus_features(entry, corpus)


class TestRunSide:
    def test_cell_and_verdict_features(self):
        record = {
            "status": "equivalent",
            "cell_counts": {"LA": 3, "SPLITTER": 0, "FA": 40},
        }
        features = run_side_features("no-retime", record)
        assert "cell:no-retime:LA" in features
        assert "cell:no-retime:LA:n3-4" in features
        assert "cell:no-retime:FA:n>32" in features
        assert not any("SPLITTER" in f for f in features)  # zero-count: no hit
        assert "verdict:no-retime:equivalent" in features

    def test_universe_enumerates_flow_cross_products(self):
        universe = feature_universe(["default", "direct"])
        assert "cell:default:LA" in universe["cell"]
        assert "cell:direct:DROC" in universe["cell"]
        assert "verdict:direct:counterexample" in universe["verdict"]
        assert len(universe["cell"]) == 2 * 9  # flows x CellKind members


class TestFaultGroup:
    def test_fault_features_bucket_kind_and_status(self):
        record = {"fault_kind": "jitter", "status": "tolerated"}
        assert fault_features("default", record) == [
            "fault:default:jitter:tolerated"
        ]
        record = {"fault_kind": "drop", "status": "miscompare"}
        assert fault_features("no-retime", record) == [
            "fault:no-retime:drop:miscompare"
        ]

    def test_fault_universe_is_the_full_cross_product(self):
        from repro.faults import fault_kind_names

        universe = feature_universe(["default", "direct"])
        expected = 2 * len(fault_kind_names()) * len(FAULT_STATUSES)
        assert len(universe["fault"]) == expected
        for flow in ("default", "direct"):
            for status in FAULT_STATUSES:
                assert f"fault:{flow}:skew:{status}" in universe["fault"]

    def test_fault_features_merge_into_coverage_maps(self):
        from repro.cov import CoverageMap

        a, b = CoverageMap(), CoverageMap()
        a.add(fault_features("default", {"fault_kind": "jitter",
                                         "status": "tolerated"}),
              unit_digest("ctrl|fault:jitter:mag=2.0:s0", "default"))
        b.add(fault_features("default", {"fault_kind": "skew",
                                         "status": "miscompare"}),
              unit_digest("s27|fault:skew:mag=5.0:s0", "default"))
        merged = a.merge(b)
        assert "fault:default:jitter:tolerated" in merged
        assert "fault:default:skew:miscompare" in merged
        assert len(merged) == 2
