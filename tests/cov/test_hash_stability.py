"""Cross-process stability of feature ids, digests and coverage JSON.

Same pattern as ``tests/gen/test_determinism.py``: run the same
extraction in two separate interpreters with *different*
``PYTHONHASHSEED`` values, which flushes out any accidental dependence
on per-process string hashing or set/dict iteration order.  Feature ids,
unit digests, the steered spec stream and the canonical coverage JSON
must come back byte-identical.
"""

import os
import subprocess
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_SNIPPET = """
from repro.cov import CoverageMap
from repro.cov.features import generation_features, unit_digest
from repro.cov.steer import steered_specs
from repro.gen import generate_specs

cov = CoverageMap()
for spec in generate_specs(8, seed=11):
    features = generation_features(spec)
    print(unit_digest(spec.name(), "default"))
    print(";".join(features))
    cov.add(features, unit_digest(spec.name()))
print(cov.canonical_json())
print(";".join(spec.name() for spec in steered_specs(30, seed=11)))
"""


def _run(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


def test_two_subprocesses_agree_bit_for_bit():
    first = _run(hash_seed="1")
    second = _run(hash_seed="2")
    assert first == second
    lines = first.splitlines()
    assert len(lines) == 8 * 2 + 2
    assert all(len(line) == 12 for line in lines[0:16:2])  # unit digests
    assert lines[-2].startswith('{"features":')  # canonical (sorted) JSON
