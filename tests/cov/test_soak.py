"""Soak runs: checkpoint/resume byte-identity and exact shard merging.

The fast tests run tiny campaigns (small budgets, few patterns) through
the real runner with the result cache disabled, so they exercise the
genuine batch loop; the ``soak``-marked test repeats the contract at the
CI smoke scale.
"""

import pytest

from repro.cov.soak import (
    SoakCampaign,
    SoakState,
    checkpoint_path,
    load_state,
    merge_states,
    run_soak,
    shard_paths,
)
from repro.eval import Runner
from repro.gen import FuzzCampaign


def _campaign(budget=4, batch_size=3, shards=1, shard_index=0, **kwargs):
    fuzz = FuzzCampaign(
        budget=budget,
        seed=0,
        patterns=kwargs.pop("patterns", 8),
        sequence_length=kwargs.pop("sequence_length", 4),
        **kwargs,
    )
    return SoakCampaign(
        fuzz=fuzz, batch_size=batch_size, shards=shards, shard_index=shard_index
    )


def _runner():
    return Runner(jobs=1, cache=None)


class TestCheckpointing:
    def test_run_checkpoints_and_completes(self, tmp_path):
        campaign = _campaign()
        state = run_soak(campaign, _runner(), tmp_path)
        assert state.complete
        assert state.units_done == state.units_total == len(campaign.shard_units())
        assert len(state.coverage) > 0
        assert state.batches and sum(b["units"] for b in state.batches) == state.units_done
        path = checkpoint_path(tmp_path, 1, 0)
        assert path.exists()
        assert load_state(path).corpus_json() == state.corpus_json()

    def test_records_carry_no_wall_clock_fields(self, tmp_path):
        state = run_soak(_campaign(), _runner(), tmp_path)
        for record in state.records:
            assert "seconds" not in record
            assert "synth_seconds" not in record
            assert "unit_index" in record

    def test_interrupted_resume_is_byte_identical(self, tmp_path):
        full_dir, resume_dir = tmp_path / "full", tmp_path / "resumed"
        run_soak(_campaign(budget=5, batch_size=2), _runner(), full_dir)

        partial = run_soak(
            _campaign(budget=5, batch_size=2), _runner(), resume_dir, max_batches=2
        )
        assert not partial.complete  # the simulated kill landed mid-campaign
        resumed = run_soak(_campaign(budget=5, batch_size=2), _runner(), resume_dir)
        assert resumed.complete

        full_bytes = checkpoint_path(full_dir, 1, 0).read_bytes()
        resumed_bytes = checkpoint_path(resume_dir, 1, 0).read_bytes()
        assert full_bytes == resumed_bytes

    def test_checkpoint_identity_mismatch_is_rejected(self, tmp_path):
        run_soak(_campaign(), _runner(), tmp_path, max_batches=1)
        with pytest.raises(ValueError, match="different campaign"):
            run_soak(
                SoakCampaign(
                    fuzz=FuzzCampaign(budget=4, seed=1, patterns=8, sequence_length=4),
                    batch_size=3,
                ),
                _runner(),
                tmp_path,
            )

    def test_schema_mismatch_is_rejected(self, tmp_path):
        state = run_soak(_campaign(), _runner(), tmp_path)
        data = state.to_dict()
        data["schema"] = "repro-soak/999"
        with pytest.raises(ValueError, match="schema"):
            SoakState.from_dict(data)


class TestSharding:
    def test_shards_partition_the_unit_stream(self):
        single = _campaign(budget=5)
        shard_a = _campaign(budget=5, shards=2, shard_index=0)
        shard_b = _campaign(budget=5, shards=2, shard_index=1)
        all_units = {index for index, _ in single.shard_units()}
        a_units = {index for index, _ in shard_a.shard_units()}
        b_units = {index for index, _ in shard_b.shard_units()}
        assert a_units | b_units == all_units
        assert not (a_units & b_units)

    def test_two_shard_merge_equals_single_shard_run(self, tmp_path):
        single_dir, shard_dir = tmp_path / "single", tmp_path / "sharded"
        single = run_soak(_campaign(budget=5, batch_size=2), _runner(), single_dir)
        states = [
            run_soak(
                _campaign(budget=5, batch_size=2, shards=2, shard_index=index),
                _runner(),
                shard_dir,
            )
            for index in range(2)
        ]
        assert len(shard_paths(shard_dir)) == 2
        merged = merge_states(states)
        assert merged.coverage == single.coverage
        assert merged.corpus_json() == single.corpus_json()
        assert merged.units_total == single.units_total
        assert merged.units_done == single.units_done

    def test_merge_round_trips_through_checkpoint_files(self, tmp_path):
        states = [
            run_soak(
                _campaign(shards=2, shard_index=index), _runner(), tmp_path
            )
            for index in range(2)
        ]
        reloaded = [load_state(path) for path in shard_paths(tmp_path)]
        assert merge_states(reloaded).corpus_json() == merge_states(states).corpus_json()

    def test_merge_rejects_incomplete_shard_sets(self, tmp_path):
        state = run_soak(_campaign(shards=2, shard_index=0), _runner(), tmp_path)
        with pytest.raises(ValueError, match="missing shard"):
            merge_states([state])

    def test_merge_rejects_mismatched_campaigns(self, tmp_path):
        a = run_soak(_campaign(shards=2, shard_index=0), _runner(), tmp_path / "a")
        b = run_soak(
            _campaign(budget=5, shards=2, shard_index=1), _runner(), tmp_path / "b"
        )
        with pytest.raises(ValueError, match="identity"):
            merge_states([a, b])

    def test_shard_parameters_are_validated(self):
        with pytest.raises(ValueError, match="shard index"):
            _campaign(shards=2, shard_index=2)
        with pytest.raises(ValueError, match="shards"):
            _campaign(shards=0)
        with pytest.raises(ValueError, match="batch size"):
            _campaign(batch_size=0)


class TestCLI:
    def test_soak_requires_checkpoint(self):
        from repro.eval.cli import main

        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["fuzz", "--soak", "--budget", "2"])

    def test_shards_require_soak(self):
        from repro.eval.cli import main

        with pytest.raises(SystemExit, match="--soak"):
            main(["fuzz", "--shards", "2", "--budget", "2"])

    def test_replay_conflicts_with_soak(self):
        from repro.eval.cli import main

        with pytest.raises(SystemExit, match="--replay"):
            main(
                ["fuzz", "--soak", "--checkpoint", "x", "--replay",
                 "gen:dag:gates=4,inputs=2,outputs=1:s0"]
            )

    def test_merge_with_empty_directory_fails(self, tmp_path):
        from repro.eval.cli import main

        with pytest.raises(SystemExit, match="no shard checkpoints"):
            main(["fuzz", "--merge", "--checkpoint", str(tmp_path)])


@pytest.mark.soak
class TestSoakSmokeScale:
    """CI smoke scale: shards + merge + coverage report through the CLI."""

    def test_sharded_cli_run_merges_and_reports(self, tmp_path, capsys):
        from repro.eval.cli import main

        code = main(
            ["fuzz", "--soak", "--budget", "20", "--batch-size", "10",
             "--shards", "2", "--checkpoint", str(tmp_path),
             "--coverage-report", "--no-cache", "-q"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "soak-merged.json").exists()
        assert (tmp_path / "coverage-report.txt").exists()
        assert "flow x cell-family hits:" in captured
        merged = load_state(tmp_path / "soak-merged.json")
        assert merged.complete and merged.units_done == 20 * 3
