"""Coverage-steered generation: determinism and the superset guarantee.

The fast tests pin the structural properties at small budgets; the
``soak``-marked campaign is the issue's acceptance check — at
``--budget 200 --seed 0`` the steered campaign must cover a strict
superset of the pure-random campaign's feature buckets while every
verdict stays EQUIVALENT.
"""

import pytest

from repro.cov import CoverageMap, steered_specs
from repro.cov.features import generation_features, load_corpus_specs, unit_digest
from repro.gen import FuzzCampaign, generate_specs
from repro.gen.spec import parse_name


def _generation_coverage(specs) -> CoverageMap:
    corpus = load_corpus_specs()
    cov = CoverageMap()
    for spec in specs:
        cov.add(generation_features(spec, corpus=corpus), unit_digest(spec.name()))
    return cov


class TestDeterminism:
    def test_steered_stream_replays_identically(self):
        first = [spec.name() for spec in steered_specs(40, seed=3)]
        second = [spec.name() for spec in steered_specs(40, seed=3)]
        assert first == second

    def test_steered_names_replay_through_the_grammar(self):
        for spec in steered_specs(12, seed=5):
            assert parse_name(spec.name()) == spec

    def test_prefix_of_longer_run_matches_shorter_run(self):
        short = [spec.name() for spec in steered_specs(20, seed=9)]
        long = [spec.name() for spec in steered_specs(45, seed=9)]
        assert long[:20] == short

    def test_family_cycle_is_preserved(self):
        specs = steered_specs(30, seed=1)
        families = sorted({spec.family for spec in generate_specs(30, seed=1)})
        for index, spec in enumerate(specs):
            assert spec.family == families[index % len(families)]

    def test_campaign_steer_flag_switches_streams(self):
        random_campaign = FuzzCampaign(budget=30, seed=2)
        steered_campaign = FuzzCampaign(budget=30, seed=2, steer=True)
        assert [s.name() for s in steered_campaign.circuits()] == [
            s.name() for s in steered_specs(30, seed=2)
        ]
        assert [s.name() for s in random_campaign.circuits()] != [
            s.name() for s in steered_campaign.circuits()
        ]
        assert steered_campaign.to_dict()["steer"] is True


class TestSupersetGuarantee:
    @pytest.mark.parametrize("budget,seed", [(40, 0), (60, 1), (50, 7)])
    def test_generation_coverage_is_a_superset(self, budget, seed):
        random_buckets = set(
            _generation_coverage(generate_specs(budget, seed)).features()
        )
        steered = CoverageMap()
        steered_specs(budget, seed, coverage=steered)
        assert random_buckets <= set(steered.features())

    def test_accumulator_matches_recomputed_coverage(self):
        accumulated = CoverageMap()
        specs = steered_specs(30, seed=4, coverage=accumulated)
        assert accumulated == _generation_coverage(specs)


@pytest.mark.soak
class TestPinnedCampaign:
    """The issue's acceptance check: budget 200, seed 0."""

    def test_strict_superset_and_all_equivalent(self):
        from repro.eval import Runner

        random_cov = _generation_coverage(generate_specs(200, seed=0))
        steered_cov = CoverageMap()
        steered_specs(200, seed=0, coverage=steered_cov)
        random_buckets = set(random_cov.features())
        steered_buckets = set(steered_cov.features())
        assert random_buckets < steered_buckets  # strict superset

        campaign = FuzzCampaign(budget=200, seed=0, steer=True)
        report = Runner(jobs=1, cache=None).fuzz(campaign, shrink=False)
        assert report.all_equivalent, [
            record.get("circuit") for record in report.failures
        ]
        statuses = {record.get("status") for record in report.records}
        assert statuses == {"equivalent"}
