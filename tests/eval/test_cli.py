"""CLI tests: argument parsing and end-to-end subcommand behaviour."""

import pytest

from repro.eval import cli


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def test_parse_run_defaults():
    args = cli.parse_args(["run", "table4"])
    assert args.command == "run"
    assert args.experiments == ["table4"]
    assert args.scale == "quick" and args.effort is None
    assert args.jobs == 1 and args.circuits is None
    assert not args.no_cache and args.save is None and not args.quiet
    assert not args.stage_timing


def test_parse_run_all_flags():
    args = cli.parse_args(
        [
            "run", "table4", "table6",
            "--scale", "paper", "--effort", "high", "-j", "8",
            "--circuits", "c880", "dec",
            "--cache-dir", "/tmp/c", "--no-cache", "--save", "out", "-q",
        ]
    )
    assert args.experiments == ["table4", "table6"]
    assert args.scale == "paper" and args.effort == "high" and args.jobs == 8
    assert args.circuits == ["c880", "dec"]
    assert args.cache_dir == "/tmp/c" and args.no_cache
    assert args.save == "out" and args.quiet


def test_parse_rejects_bad_choices():
    with pytest.raises(SystemExit):
        cli.parse_args(["run", "table4", "--scale", "huge"])
    with pytest.raises(SystemExit):
        cli.parse_args(["run", "table4", "--effort", "extreme"])
    with pytest.raises(SystemExit):
        cli.parse_args([])  # a subcommand is required


def test_parse_verify_defaults():
    args = cli.parse_args(["verify"])
    assert args.command == "verify"
    assert not args.catalog and args.circuit is None  # no subset = whole catalog
    assert args.patterns == 256 and args.seed == 0 and args.sequence_length == 8
    assert args.scale == "quick" and args.effort == "medium" and args.jobs == 1


def test_parse_verify_flags():
    args = cli.parse_args(
        [
            "verify", "--circuit", "c880", "--circuit", "s27",
            "--patterns", "64", "--seed", "9", "--sequence-length", "4",
            "--effort", "low", "-j", "3", "--no-cache", "-q",
        ]
    )
    assert args.circuit == ["c880", "s27"]
    assert args.patterns == 64 and args.seed == 9 and args.sequence_length == 4
    assert args.effort == "low" and args.jobs == 3 and args.no_cache and args.quiet


def test_parse_verify_catalog_and_circuit_conflict():
    with pytest.raises(SystemExit):
        cli.parse_args(["verify", "--catalog", "--circuit", "c880"])


def test_parse_list_and_report():
    assert cli.parse_args(["list"]).command == "list"
    assert cli.parse_args(["list", "--circuits"]).circuits is True
    report = cli.parse_args(["report"])
    assert report.command == "report" and report.directory == "results"
    assert cli.parse_args(["report", "out"]).directory == "out"


def test_unknown_experiment_exits():
    with pytest.raises(SystemExit, match="unknown experiment"):
        cli.main(["run", "table99", "--no-cache"])


# ---------------------------------------------------------------------------
# End-to-end subcommands
# ---------------------------------------------------------------------------


def test_list_shows_every_experiment(capsys):
    assert cli.main(["list", "--circuits"]) == 0
    out = capsys.readouterr().out
    for name in ("table3", "table4", "table5", "table6", "figure7", "headline"):
        assert name in out
    assert "c880" in out and "iscas85" in out  # circuit catalogue listed


def test_list_shows_shared_aig_opt_prefixes(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Shared aig-opt prefixes" in out
    # table3 and table4 both synthesise EPFL control circuits at the same
    # default effort, so they must show up as sharing cached prefixes.
    assert any("table3" in line and "table4" in line for line in out.splitlines())


def test_run_stage_timing_table(capsys, tmp_path):
    rc = cli.main(
        [
            "run", "table4", "--circuits", "ctrl", "--effort", "none",
            "--cache-dir", str(tmp_path / "cache"), "--stage-timing", "-q",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "stage timing:" in out
    for stage in ("frontend", "aig-opt", "polarity", "map"):
        assert stage in out


def test_run_stage_timing_without_synthesis(capsys):
    rc = cli.main(["run", "figure1", "--no-cache", "--stage-timing", "-q"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no synthesis stages ran" in out


def test_run_figure1_no_synthesis(capsys, tmp_path):
    rc = cli.main(["run", "figure1", "--no-cache", "-q"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "roundtrip_ok: True" in out


def test_run_save_and_report_roundtrip(capsys, tmp_path):
    cache = tmp_path / "cache"
    results = tmp_path / "results"
    rc = cli.main(
        [
            "run", "table4", "--circuits", "dec", "--effort", "low",
            "--jobs", "2", "--cache-dir", str(cache), "--save", str(results), "-q",
        ]
    )
    run_out = capsys.readouterr().out
    assert rc == 0
    assert (results / "table4-quick.json").exists()
    assert (results / "table4-quick.csv").exists()
    assert "1 records" in run_out  # cache populated

    # Second run is served entirely from the cache.
    rc = cli.main(
        [
            "run", "table4", "--circuits", "dec", "--effort", "low",
            "--cache-dir", str(cache), "-q",
        ]
    )
    replay_out = capsys.readouterr().out
    assert rc == 0
    assert "(1/1 jobs cached, 0 synthesised" in replay_out

    rc = cli.main(["report", str(results)])
    report_out = capsys.readouterr().out
    assert rc == 0
    assert "table4-quick.json" in report_out
    assert "[table4]" in report_out and "Circuit" in report_out


def test_report_empty_directory(capsys, tmp_path):
    assert cli.main(["report", str(tmp_path)]) == 1
    assert "no saved reports" in capsys.readouterr().out


def test_verify_single_circuit_and_cache_replay(capsys, tmp_path):
    cache = tmp_path / "cache"
    results = tmp_path / "results"
    argv = [
        "verify", "--circuit", "ctrl", "--patterns", "32", "--effort", "low",
        "--cache-dir", str(cache), "--save", str(results), "-q",
    ]
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "EQUIVALENT" in out and "all_equivalent: True" in out
    assert "0/1 verdicts cached, 1 verified" in out
    assert (results / "verify-quick.json").exists()

    assert cli.main(argv[:-3] + ["-q"]) == 0  # warm cache, no --save
    replay = capsys.readouterr().out
    assert "1/1 verdicts cached, 0 verified" in replay


def test_verify_rejects_unknown_circuit(capsys):
    with pytest.raises(SystemExit, match="unknown circuit"):
        cli.main(["verify", "--circuit", "nope", "--no-cache", "-q"])
