"""Runner/engine tests: cache behaviour, parallel-serial equality, emission."""

import json

import pytest

from repro.core import Flow, FlowOptions, StageCache, set_stage_cache
from repro.eval import (
    ResultCache,
    Runner,
    SynthesisEngine,
    SynthesisJob,
    run_table4,
)
from repro.eval.runner import EXPERIMENTS, load_report, write_csv, write_json

# Small, fast circuits: the point of these tests is the engine, not the flow.
FAST_CIRCUITS = ["ctrl", "int2float"]
FAST_OPTIONS = {"effort": "none"}


def fast_job(circuit="ctrl", scale="quick", **overrides):
    options = dict(FAST_OPTIONS)
    options.update(overrides)
    return SynthesisJob.create(circuit, scale, options)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    engine = SynthesisEngine(cache=cache)
    job = fast_job()

    record = engine.record_for(job)
    assert cache.misses == 1 and cache.puts == 1 and cache.hits == 0
    assert record["circuit"] == "ctrl" and record["jj"] > 0

    # A second engine on the same directory must hit, not recompute.
    fresh = SynthesisEngine(cache=ResultCache(tmp_path))
    replay = fresh.record_for(job)
    assert fresh.cache.hits == 1 and fresh.cache.misses == 0
    assert not fresh.computed
    assert replay == json.loads(json.dumps(record))  # JSON-roundtripped equal


def test_cache_key_distinguishes_jobs():
    from repro import FlowOptions

    base = fast_job()
    assert base.key() == fast_job().key()
    # Partial option mappings canonicalise to the same key as FlowOptions.
    assert base.key() == SynthesisJob.create("ctrl", "quick", FlowOptions(effort="none")).key()
    assert base.key() != fast_job(scale="paper").key()
    assert base.key() != fast_job(circuit="int2float").key()
    assert base.key() != fast_job(effort="low").key()
    assert base.key() != fast_job(optimize_polarity=False).key()


def test_cache_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    engine = SynthesisEngine(cache=cache)
    engine.record_for(fast_job())
    assert len(cache) == 1 and cache.contains(fast_job())
    assert cache.clear() == 1
    assert len(cache) == 0 and not cache.contains(fast_job())


def test_engine_memory_avoids_recompute_without_disk_cache():
    engine = SynthesisEngine()
    first = engine.record("ctrl", options=FAST_OPTIONS)
    second = engine.record("ctrl", options=FAST_OPTIONS)
    assert first is second
    assert len(engine.computed) == 1


def test_cache_keys_on_flow_signature():
    # The record cache is addressed by the staged flow signature, so an
    # options-built job and the equivalent Flow-built job are one record.
    by_options = fast_job()
    by_flow = SynthesisJob.from_flow(
        "ctrl", "quick", Flow.from_options(FlowOptions(effort="none"))
    )
    assert by_options.key() == by_flow.key()
    # A hand-composed flow with a different stage list is a different record.
    custom = SynthesisJob.from_flow(
        "ctrl",
        "quick",
        Flow.from_script(
            ["frontend", ("aig-opt", {"effort": "none"}),
             ("polarity", {"mode": "positive"}), "map", "sequential", "report"]
        ),
    )
    assert custom.key() != by_options.key()
    assert custom.flow().stage_names()[0] == "frontend"
    with pytest.raises(ValueError, match="hand-composed"):
        custom.flow_options()


def test_record_carries_flow_signature_and_stage_timings():
    engine = SynthesisEngine()
    record = engine.record("ctrl", options=FAST_OPTIONS)
    assert [entry[0] for entry in record["flow"]] == [
        "frontend", "aig-opt", "pipeline", "polarity", "map", "sequential", "report",
    ]
    stage_rows = record["stages"]
    assert [row["stage"] for row in stage_rows] == [e[0] for e in record["flow"]]
    assert all(row["seconds"] >= 0.0 for row in stage_rows)


# ---------------------------------------------------------------------------
# Stage-level memoisation across flow variants
# ---------------------------------------------------------------------------


def test_polarity_sweep_reuses_cached_aig_opt_stage():
    """Acceptance: a two-variant polarity sweep reuses the post-aig-opt AIG."""
    from repro.core import get_stage_cache

    previous = set_stage_cache(StageCache())
    try:
        stage_cache = get_stage_cache()
        engine = SynthesisEngine()
        engine.record("ctrl", options={"effort": "low", "optimize_polarity": True})
        hits_before = stage_cache.hits
        second = engine.record("ctrl", options={"effort": "low", "optimize_polarity": False})
        assert stage_cache.hits == hits_before + 1
        # The reused prefix is exactly the post-aig-opt boundary: the second
        # record shows frontend/aig-opt served from the stage cache.
        cached_stages = [r["stage"] for r in second["stages"] if r["cached"]]
        assert cached_stages == ["frontend", "aig-opt"]
    finally:
        set_stage_cache(previous)


def test_stage_cache_does_not_change_results():
    previous = set_stage_cache(StageCache())
    try:
        warm = SynthesisEngine(memoize=False)
        first = warm.record("int2float", options={"effort": "low"})
        second = warm.record("int2float", options={"effort": "low", "optimize_polarity": False})
        set_stage_cache(StageCache())  # cold cache, same jobs
        cold = SynthesisEngine(memoize=False)
        assert _metrics_only(cold.record("int2float", options={"effort": "low"})) == _metrics_only(first)
        assert _metrics_only(
            cold.record("int2float", options={"effort": "low", "optimize_polarity": False})
        ) == _metrics_only(second)
    finally:
        set_stage_cache(previous)


def _metrics_only(record):
    """Strip the timing rows (the only legitimately nondeterministic part)."""
    return {k: v for k, v in record.items() if k != "stages"}


# ---------------------------------------------------------------------------
# Parallel vs serial
# ---------------------------------------------------------------------------


def test_parallel_run_matches_serial_assembly(tmp_path):
    serial = run_table4(effort="none", circuits=FAST_CIRCUITS, engine=SynthesisEngine())

    runner = Runner(jobs=2, cache=ResultCache(tmp_path / "cache"))
    report = runner.run("table4", effort="none", circuits=FAST_CIRCUITS)

    assert report.result.rows == serial.rows
    assert report.result.summary == serial.summary
    assert report.result.text == serial.text
    assert report.total_jobs == len(FAST_CIRCUITS)
    assert report.computed_jobs == len(FAST_CIRCUITS)
    assert report.cached_jobs == 0

    # Second invocation: everything from cache, zero re-synthesis.
    replay = Runner(jobs=2, cache=ResultCache(tmp_path / "cache")).run(
        "table4", effort="none", circuits=FAST_CIRCUITS
    )
    assert replay.computed_jobs == 0
    assert replay.cached_jobs == len(FAST_CIRCUITS)
    assert replay.result.rows == serial.rows
    assert replay.result.summary == serial.summary


def test_runner_rejects_unknown_experiment():
    with pytest.raises(KeyError, match="unknown experiment"):
        Runner().run("table99")


def test_every_spec_enumerates_consistently():
    # Specs must enumerate declaratively (no synthesis) at both scales.
    for name, spec in EXPERIMENTS.items():
        jobs = spec.enumerate_jobs("quick")
        assert isinstance(jobs, list), name
        for job in jobs:
            assert isinstance(job, SynthesisJob)
            # Every enumerated option must round-trip through FlowOptions.
            job.flow_options()


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def test_json_and_csv_emission(tmp_path):
    runner = Runner(jobs=1, cache=ResultCache(tmp_path / "cache"))
    report = runner.run("table4", effort="none", circuits=["ctrl"])

    json_path = write_json(report, tmp_path / "out" / "table4.json")
    data = load_report(json_path)
    assert data["experiment"] == "table4"
    assert data["rows"] == json.loads(json.dumps(report.result.rows))
    assert data["total_jobs"] == 1
    assert "text" in data and "summary" in data

    csv_path = write_csv(report, tmp_path / "out" / "table4.csv")
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 1 + len(report.result.rows)
    assert lines[0].startswith("circuit,")
