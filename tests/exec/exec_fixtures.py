"""Poisoned work units for executor fault-injection tests.

Module-level (hence picklable) units whose ``run`` misbehaves on
demand: raise an exception, hard-kill the worker process, sleep past a
timeout, or crash exactly once and then succeed (via a filesystem
marker visible across processes).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.schema import content_key


@dataclass(frozen=True)
class PoisonUnit:
    """A unit whose behaviour is selected by ``mode``.

    Modes: ``ok`` (return a record), ``raise`` (throw RuntimeError),
    ``exit`` (``os._exit(3)`` — kills the worker), ``sleep`` (block for
    ``sleep_s`` seconds), ``crash_once`` (``os._exit(5)`` on the first
    execution, success afterwards; needs ``marker`` pointing at a
    scratch path shared by all attempts).
    """

    index: int
    mode: str = "ok"
    marker: str = ""
    sleep_s: float = 30.0

    schema_kind = "record"

    def key(self) -> str:
        return content_key(
            {"poison-unit": self.index, "mode": self.mode, "marker": self.marker}
        )

    def describe(self) -> str:
        return f"poison#{self.index}:{self.mode}"

    def run(self):
        if self.mode == "raise":
            raise RuntimeError(f"poisoned unit {self.index}")
        if self.mode == "exit":
            os._exit(3)
        if self.mode == "sleep":
            time.sleep(self.sleep_s)
        if self.mode == "crash_once" and not os.path.exists(self.marker):
            with open(self.marker, "w", encoding="utf-8"):
                pass
            os._exit(5)
        # Carries the `record` message type's required fields so healthy
        # poison results are cacheable like real synthesis records.
        return {
            "status": "ok",
            "index": self.index,
            "circuit": f"poison{self.index}",
            "scale": "quick",
            "flow": [],
        }
