"""Executor equivalence: serial == pool == workers for every campaign.

The acceptance contract of the execution-layer refactor: at the same
seeds, every backend produces the same campaign report byte-for-byte
once the explicitly volatile wall-clock fields (``elapsed_s`` on the
report, ``synth_seconds``/``seconds`` inside records) are stripped.
Fault reports and soak checkpoints are deterministic by construction,
so those compare byte-identical with no scrubbing at all.
"""

import json

import pytest

from repro.cov.soak import SoakCampaign, checkpoint_path, run_soak
from repro.eval import Runner
from repro.faults.campaign import FaultCampaign
from repro.gen import FuzzCampaign
from repro.verify import VerificationSpec

EXECUTORS = ("serial", "pool", "workers")

VOLATILE_RECORD_FIELDS = ("seconds", "synth_seconds")


def _runner(executor):
    return Runner(jobs=2, cache=None, executor=executor)


def _canonical(report_dict):
    """Report JSON with the documented wall-clock fields removed."""
    doc = dict(report_dict)
    doc.pop("elapsed_s", None)
    # The rendered table has a wall-clock column; rows carry the same
    # data minus the volatile fields, so dropping the text loses nothing.
    doc.pop("text", None)
    doc["rows"] = [
        {k: v for k, v in row.items() if k not in VOLATILE_RECORD_FIELDS}
        for row in doc.get("rows", [])
    ]
    return json.dumps(doc, sort_keys=True)


def _pairs(rendered):
    """(executor, bytes) pairs with a readable assertion message."""
    serial = rendered["serial"]
    for name, blob in rendered.items():
        assert blob == serial, f"{name} report diverges from serial"


def test_verify_reports_are_identical_across_backends():
    specs = [
        VerificationSpec.create(name, patterns=16) for name in ("ctrl", "s27")
    ]
    rendered = {
        name: _canonical(_runner(name).verify(specs).to_dict())
        for name in EXECUTORS
    }
    _pairs(rendered)


def test_fuzz_reports_are_identical_across_backends():
    campaign = FuzzCampaign(budget=4, seed=0, patterns=8, sequence_length=4)
    rendered = {
        name: _canonical(_runner(name).fuzz(campaign).to_dict())
        for name in EXECUTORS
    }
    _pairs(rendered)


def test_fault_reports_are_byte_identical_across_backends():
    # FaultReport.to_dict is documented to be a pure function of the
    # campaign identity — compare without any scrubbing.
    campaign = FaultCampaign(
        circuits=("ctrl", "s27"), kinds=("jitter",), patterns=16
    )
    rendered = {
        name: json.dumps(_runner(name).faults(campaign).to_dict(), sort_keys=True)
        for name in EXECUTORS
    }
    _pairs(rendered)


@pytest.mark.parametrize("executor", ["pool", "workers"])
def test_soak_checkpoints_match_serial_byte_for_byte(executor, tmp_path):
    campaign = SoakCampaign(
        fuzz=FuzzCampaign(budget=6, seed=0, patterns=8, sequence_length=4),
        batch_size=3,
    )
    serial_dir = tmp_path / "serial"
    other_dir = tmp_path / executor
    run_soak(campaign, _runner("serial"), serial_dir)
    run_soak(campaign, _runner(executor), other_dir)
    serial_bytes = checkpoint_path(serial_dir, 1, 0).read_bytes()
    other_bytes = checkpoint_path(other_dir, 1, 0).read_bytes()
    assert serial_bytes == other_bytes
