"""CLI surface of the execution layer: --executor, --unit-timeout, --jobs."""

import pytest

from repro.eval.cli import parse_args
from repro.exec import EXECUTOR_NAMES

CAMPAIGN_COMMANDS = ("run", "verify", "fuzz", "faults")


def _argv(command, *extra):
    # `repro run` requires at least one experiment name positionally.
    head = [command, "all"] if command == "run" else [command]
    return head + list(extra)


@pytest.mark.parametrize("command", CAMPAIGN_COMMANDS)
def test_executor_defaults_to_pool(command):
    args = parse_args(_argv(command))
    assert args.executor == "pool"
    assert args.unit_timeout is None
    assert args.jobs == 1


@pytest.mark.parametrize("command", CAMPAIGN_COMMANDS)
@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_every_backend_is_selectable_on_every_campaign(command, executor):
    args = parse_args(_argv(command, "--executor", executor))
    assert args.executor == executor


def test_unknown_executor_is_rejected(capsys):
    with pytest.raises(SystemExit):
        parse_args(["verify", "--executor", "threads"])
    assert "invalid choice" in capsys.readouterr().err


def test_unit_timeout_parses_as_seconds():
    args = parse_args(["faults", "--executor", "workers", "--unit-timeout", "2.5"])
    assert args.unit_timeout == 2.5


@pytest.mark.parametrize("command", CAMPAIGN_COMMANDS)
@pytest.mark.parametrize("bad", ["0", "-3"])
def test_zero_and_negative_jobs_are_rejected(command, bad, capsys):
    with pytest.raises(SystemExit):
        parse_args(_argv(command, "--jobs", bad))
    assert f"jobs must be >= 1, got {int(bad)}" in capsys.readouterr().err


def test_non_integer_jobs_is_rejected(capsys):
    with pytest.raises(SystemExit):
        parse_args(["run", "all", "-j", "many"])
    assert "jobs must be an integer" in capsys.readouterr().err


def test_positive_jobs_still_parse():
    assert parse_args(["verify", "-j", "4"]).jobs == 4
