"""Executor backends: result equality, crash isolation, timeout, cleanup."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from exec_fixtures import PoisonUnit
from repro.exec import (
    ExecEvent,
    PersistentWorkerExecutor,
    PoolExecutor,
    ProbeUnit,
    SerialExecutor,
)


def _results(executor, units):
    with executor:
        return list(executor.map(units))


def _records(executor, units):
    return [r.record for r in _results(executor, units)]


# ---------------------------------------------------------------------------
# Equality across backends
# ---------------------------------------------------------------------------


def test_all_backends_produce_identical_records_in_order():
    units = [ProbeUnit(index=i, spin=100) for i in range(8)]
    serial = _records(SerialExecutor(), units)
    pool = _records(PoolExecutor(jobs=3), units)
    workers = _records(PersistentWorkerExecutor(jobs=3), units)
    assert serial == pool == workers
    assert [r["index"] for r in serial] == list(range(8))


def test_backends_yield_results_in_submission_order():
    # Give later units less work so they finish first on parallel
    # backends; results must still come back in submission order.
    units = [PoisonUnit(index=0, mode="sleep", sleep_s=0.3)] + [
        ProbeUnit(index=i) for i in range(1, 5)
    ]
    for executor in (PoolExecutor(jobs=4), PersistentWorkerExecutor(jobs=4)):
        assert [r.index for r in _results(executor, units)] == list(range(5))


def test_empty_unit_list_is_a_no_op():
    for executor in (
        SerialExecutor(),
        PoolExecutor(jobs=2),
        PersistentWorkerExecutor(jobs=2),
    ):
        assert _results(executor, []) == []


# ---------------------------------------------------------------------------
# Exception containment (the pool.imap abort bug)
# ---------------------------------------------------------------------------


def test_serial_captures_exceptions_as_error_results():
    results = _results(SerialExecutor(), [PoisonUnit(index=0, mode="raise")])
    assert results[0].record is None
    assert results[0].error["type"] == "RuntimeError"
    assert "poisoned unit 0" in results[0].error["message"]
    assert "Traceback" in results[0].error["traceback"]


def test_pool_worker_exception_does_not_abort_the_batch():
    units = [
        PoisonUnit(index=0),
        PoisonUnit(index=1, mode="raise"),
        PoisonUnit(index=2),
    ]
    results = _results(PoolExecutor(jobs=2), units)
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].error["type"] == "RuntimeError"
    assert results[0].record["status"] == "ok"
    assert results[2].record["status"] == "ok"


# ---------------------------------------------------------------------------
# Crash isolation (workers backend)
# ---------------------------------------------------------------------------


def test_worker_crash_is_isolated_and_batch_completes():
    units = [
        PoisonUnit(index=0),
        PoisonUnit(index=1, mode="exit"),
        PoisonUnit(index=2),
    ]
    executor = PersistentWorkerExecutor(jobs=2, backoff_s=0.01)
    results = _results(executor, units)
    assert [r.ok for r in results] == [True, False, True]
    assert results[1].error["type"] == "WorkerCrash"
    assert "exit code 3" in results[1].error["message"]


def test_crash_retry_exhaustion_counts_attempts():
    executor = PersistentWorkerExecutor(jobs=1, retries=2, backoff_s=0.01)
    results = _results(executor, [PoisonUnit(index=0, mode="exit")])
    assert results[0].error["type"] == "WorkerCrash"
    assert results[0].attempts == 3  # initial + 2 retries


def test_crash_once_unit_heals_on_respawned_worker(tmp_path):
    marker = str(tmp_path / "crashed-once")
    events = []
    executor = PersistentWorkerExecutor(jobs=1, backoff_s=0.01)
    executor.emit = events.append
    results = _results(executor, [PoisonUnit(index=0, mode="crash_once", marker=marker)])
    assert results[0].ok
    assert results[0].record["status"] == "ok"
    assert results[0].attempts == 2
    kinds = [e.kind for e in events]
    assert "respawn" in kinds and "retry" in kinds


def test_zero_retries_fails_on_first_crash(tmp_path):
    marker = str(tmp_path / "crashed-once")
    executor = PersistentWorkerExecutor(jobs=1, retries=0, backoff_s=0.01)
    results = _results(executor, [PoisonUnit(index=0, mode="crash_once", marker=marker)])
    assert not results[0].ok
    assert results[0].attempts == 1


# ---------------------------------------------------------------------------
# Timeout
# ---------------------------------------------------------------------------


def test_timeout_kills_the_unit_without_retry():
    units = [PoisonUnit(index=0), PoisonUnit(index=1, mode="sleep", sleep_s=30.0)]
    executor = PersistentWorkerExecutor(jobs=2, timeout=0.5)
    started = time.monotonic()
    results = _results(executor, units)
    elapsed = time.monotonic() - started
    assert elapsed < 10.0
    assert results[0].ok
    assert results[1].error["type"] == "Timeout"
    assert results[1].attempts == 1


def test_timeout_emits_a_structured_event():
    events = []
    executor = PersistentWorkerExecutor(jobs=1, timeout=0.3)
    executor.emit = events.append
    _results(executor, [PoisonUnit(index=0, mode="sleep", sleep_s=30.0)])
    assert any(e.kind == "timeout" for e in events)
    assert all(isinstance(e, ExecEvent) for e in events)


# ---------------------------------------------------------------------------
# Cleanup discipline
# ---------------------------------------------------------------------------


def test_close_terminates_workers_on_early_exit():
    executor = PersistentWorkerExecutor(jobs=2)
    iterator = executor.map([ProbeUnit(index=i) for i in range(4)])
    next(iterator)
    pids = [w.process.pid for w in executor._workers]
    assert pids
    executor.close()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if all(not _pid_alive(pid) for pid in pids):
            break
        time.sleep(0.05)
    assert all(not _pid_alive(pid) for pid in pids)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.mark.parametrize("backend", ["pool", "workers"])
def test_sigint_mid_campaign_leaves_no_worker_processes(backend, tmp_path):
    """Signal injection: Ctrl-C mid-campaign must not orphan workers.

    A child interpreter starts a slow campaign on the chosen backend,
    reports its worker PIDs, and gets SIGINT mid-flight; every worker
    PID must be gone afterwards.
    """
    script = textwrap.dedent(
        """
        import json, multiprocessing, sys, threading, time
        sys.path.insert(0, {fixture_dir!r})
        from exec_fixtures import PoisonUnit
        from repro.exec import PoolExecutor, PersistentWorkerExecutor

        backend = {backend!r}
        if backend == "pool":
            executor = PoolExecutor(jobs=2)
        else:
            executor = PersistentWorkerExecutor(jobs=2)
        units = [PoisonUnit(index=i, mode="sleep", sleep_s=30.0) for i in range(4)]

        def report_pids():
            # The map generator spawns workers on first next(); sample the
            # children once they exist, while the main thread is blocked.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                children = [p.pid for p in multiprocessing.active_children()]
                if children:
                    time.sleep(0.5)  # let them pick up units
                    children = [p.pid for p in multiprocessing.active_children()]
                    print(json.dumps(children), flush=True)
                    return
                time.sleep(0.05)
            print(json.dumps([]), flush=True)

        threading.Thread(target=report_pids, daemon=True).start()
        try:
            with executor:
                for result in executor.map(units):
                    pass
        except KeyboardInterrupt:
            print("INTERRUPTED", flush=True)
        """
    ).format(backend=backend, fixture_dir=os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline().strip()
        import json

        pids = json.loads(line)
        assert pids, "campaign spawned no workers"
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert "INTERRUPTED" in out, (out, err)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if all(not _pid_alive(pid) for pid in pids):
            break
        time.sleep(0.05)
    assert all(not _pid_alive(pid) for pid in pids), f"orphaned workers: {pids}"
