"""The shared lifecycle: dedupe, cache replay, error containment, healing."""

import pytest

from exec_fixtures import PoisonUnit
from repro.eval.engine import ResultCache
from repro.exec import ProbeUnit, SerialExecutor, resolve_executor, run_units
from repro.exec.executors import PersistentWorkerExecutor, PoolExecutor


def test_duplicate_keys_execute_once():
    units = [ProbeUnit(index=1), ProbeUnit(index=2), ProbeUnit(index=1)]
    events = []
    outcome = run_units(units, executor="serial", emit=events.append)
    assert outcome.computed == 2 and outcome.cached == 0
    assert len(outcome.records) == 2
    assert sum(1 for e in events if e.kind == "computed") == 2


def test_cache_replay_counts_and_events(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    units = [ProbeUnit(index=i) for i in range(3)]
    first = run_units(units, cache=cache, executor="serial")
    assert first.computed == 3 and first.cached == 0
    assert cache.stats() == {"hits": 0, "misses": 3, "puts": 3}

    events = []
    second = run_units(units, cache=cache, executor="serial", emit=events.append)
    assert second.computed == 0 and second.cached == 3
    assert [e.kind for e in events] == ["cached"] * 3
    assert second.records == first.records


def test_error_records_flow_into_the_outcome_but_not_the_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    units = [
        PoisonUnit(index=0),
        PoisonUnit(index=1, mode="raise"),
        PoisonUnit(index=2),
    ]
    outcome = run_units(units, cache=cache, executor="serial")
    # Campaign completed: every unit accounted for, exactly one error.
    assert len(outcome.records) == 3
    assert len(outcome.errors) == 1
    error = outcome.errors[0]
    assert error["status"] == "error"
    assert error["error"]["type"] == "RuntimeError"
    # Only the two healthy records were cached.
    assert cache.stats()["puts"] == 2
    assert cache.get(units[1]) is None


def test_rerun_heals_errors_from_fresh_computation(tmp_path):
    """Acceptance: an injected crash leaves exactly one error unit; the
    rerun recomputes only that unit and replays the rest from cache."""
    cache = ResultCache(tmp_path / "cache")
    marker = str(tmp_path / "crashed-once")
    units = [
        PoisonUnit(index=0),
        # raise-mode fails deterministically on run 1; flipping the mode
        # is not possible on a frozen unit, so use crash_once semantics
        # via the marker file: hard-crash first execution, succeed after.
        PoisonUnit(index=1, mode="crash_once", marker=marker),
        PoisonUnit(index=2),
    ]
    first = run_units(
        units,
        cache=cache,
        executor=PersistentWorkerExecutor(jobs=1, retries=0),
    )
    assert len(first.errors) == 1
    healthy_paths = {
        cache._path(units[0].key()): cache._path(units[0].key()).stat().st_mtime_ns,
        cache._path(units[2].key()): cache._path(units[2].key()).stat().st_mtime_ns,
    }

    second = run_units(
        units,
        cache=cache,
        executor=PersistentWorkerExecutor(jobs=1, retries=0),
    )
    assert second.errors == []
    assert second.cached == 2 and second.computed == 1
    assert second.records[units[1].key()]["status"] == "ok"
    # Cached records were untouched (not rewritten) by the healing rerun.
    for path, mtime in healthy_paths.items():
        assert path.stat().st_mtime_ns == mtime


def test_result_cache_refuses_error_records(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    unit = ProbeUnit(index=0)
    with pytest.raises(ValueError, match="status='error'"):
        cache.put(unit, {"status": "error", "error": {"type": "X"}})


def test_an_executor_instance_is_used_but_not_closed():
    executor = SerialExecutor()
    closed = []
    executor.close = lambda: closed.append(True)  # type: ignore[method-assign]
    outcome = run_units([ProbeUnit(index=0)], executor=executor)
    assert outcome.computed == 1
    assert closed == []


def test_resolve_executor_preserves_the_historical_pool_shape():
    assert isinstance(resolve_executor("serial", 4, 10), SerialExecutor)
    # jobs == 1 and single-unit batches stay in-process under "pool".
    assert isinstance(resolve_executor("pool", 1, 10), SerialExecutor)
    assert isinstance(resolve_executor("pool", 4, 1), SerialExecutor)
    assert isinstance(resolve_executor("pool", 4, 10), PoolExecutor)
    workers = resolve_executor("workers", 8, 3, unit_timeout=2.0)
    assert isinstance(workers, PersistentWorkerExecutor)
    assert workers.jobs == 3 and workers.timeout == 2.0
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("threads", 2, 5)


def test_schedule_event_only_for_parallel_batches():
    events = []
    run_units(
        [ProbeUnit(index=i) for i in range(3)],
        executor="pool",
        jobs=2,
        emit=events.append,
        noun="verification",
    )
    schedules = [e for e in events if e.kind == "schedule"]
    assert len(schedules) == 1
    assert schedules[0].total == 3 and schedules[0].detail == "2"

    events.clear()
    run_units(
        [ProbeUnit(index=i) for i in range(3)],
        executor="pool",
        jobs=1,
        emit=events.append,
    )
    assert [e.kind for e in events] == ["computed"] * 3
