"""WorkUnit adapters: delegation, keys, pickling."""

import pickle

from repro.eval.engine import SynthesisJob, synthesis_record
from repro.exec import CallableUnit, ProbeUnit, SpecUnit, WorkUnit, spec_units
from repro.faults.campaign import FaultSpec, fault_record
from repro.verify.campaign import VerificationSpec, verification_record


def test_spec_unit_delegates_to_the_spec():
    spec = VerificationSpec(circuit="ctrl", patterns=16)
    unit = SpecUnit(spec=spec, compute=verification_record, description="ctrl!")
    assert unit.key() == spec.key()
    assert unit.schema_kind == "verify"
    assert unit.describe() == "ctrl!"


def test_spec_unit_kinds_cover_every_spec_family():
    assert SpecUnit(
        spec=SynthesisJob.create("ctrl"), compute=synthesis_record
    ).schema_kind == "record"
    assert SpecUnit(
        spec=VerificationSpec(circuit="ctrl"), compute=verification_record
    ).schema_kind == "verify"
    assert SpecUnit(
        spec=FaultSpec(circuit="ctrl", scenario="fault:jitter:rate=5:s0"),
        compute=fault_record,
    ).schema_kind == "fault"


def test_spec_unit_pickle_round_trip():
    # Module-level compute functions pickle by qualified name — this is
    # what lets pool/worker backends ship units to worker processes.
    unit = SpecUnit(
        spec=VerificationSpec(circuit="s27", patterns=8),
        compute=verification_record,
        description="s27",
    )
    clone = pickle.loads(pickle.dumps(unit))
    assert clone.key() == unit.key()
    assert clone.compute is verification_record


def test_spec_units_builder_describes_each_spec():
    specs = [VerificationSpec(circuit=c) for c in ("ctrl", "s27")]
    units = spec_units(specs, verification_record, lambda s: s.circuit.upper())
    assert [u.describe() for u in units] == ["CTRL", "S27"]
    assert all(isinstance(u, WorkUnit) for u in units)


def test_probe_unit_is_picklable_and_deterministic():
    unit = ProbeUnit(index=3, spin=50)
    clone = pickle.loads(pickle.dumps(unit))
    assert clone.key() == unit.key()
    assert clone.run() == unit.run()
    assert unit.run()["status"] == "ok"


def test_probe_units_key_on_their_payload():
    assert ProbeUnit(index=1).key() != ProbeUnit(index=2).key()
    assert ProbeUnit(index=1, spin=5).key() != ProbeUnit(index=1, spin=6).key()


def test_callable_unit_runs_in_process():
    seen = []
    unit = CallableUnit(name="probe", fn=lambda: seen.append(1) or {"n": 1})
    assert isinstance(unit, WorkUnit)
    assert unit.run() == {"n": 1}
    assert seen == [1]
