"""Campaign scheduling, records, reports, and the ``repro faults`` CLI."""

import json

import pytest

from repro.eval import cli
from repro.faults import (
    FAULTS_SCHEMA,
    FaultCampaign,
    FaultReport,
    FaultSpec,
    default_scenario,
    fault_record,
)
from repro.faults.margin import search_margin


class TestSpecKeys:
    def test_key_is_stable(self):
        a = FaultSpec.create("ctrl", default_scenario("jitter"))
        b = FaultSpec.create("ctrl", default_scenario("jitter"))
        assert a.key() == b.key()

    def test_key_varies_with_identity(self):
        base = FaultSpec.create("ctrl", default_scenario("jitter"))
        keys = {
            base.key(),
            FaultSpec.create("s27", default_scenario("jitter")).key(),
            FaultSpec.create("ctrl", default_scenario("skew")).key(),
            FaultSpec.create("ctrl", default_scenario("jitter", seed=1)).key(),
            FaultSpec.create("ctrl", default_scenario("jitter"), margin=True).key(),
            FaultSpec.create("ctrl", default_scenario("jitter"), patterns=8).key(),
        }
        assert len(keys) == 6

    def test_create_canonicalises_string_scenarios(self):
        spec = FaultSpec.create("ctrl", "fault:jitter:mag=2.0:s0")
        assert spec.scenario == default_scenario("jitter").name()
        with pytest.raises(ValueError):
            FaultSpec.create("ctrl", "not-a-scenario")


class TestCampaignUnits:
    def test_units_are_circuit_major(self):
        campaign = FaultCampaign(
            circuits=("ctrl", "s27"), kinds=("jitter", "skew"), flows=("default",)
        )
        units = campaign.units()
        assert [u.spec.circuit for u in units] == ["ctrl", "ctrl", "s27", "s27"]
        assert [u.spec.scenario_spec().kind for u in units] == [
            "jitter", "skew", "jitter", "skew",
        ]
        assert all(u.flow_name == "default" for u in units)

    def test_empty_circuits_means_whole_catalog(self):
        from repro.circuits import names as circuit_names

        campaign = FaultCampaign(kinds=("jitter",))
        assert len(campaign.units()) == len(circuit_names())

    def test_magnitude_overrides_flow_into_scenarios(self):
        campaign = FaultCampaign(
            circuits=("ctrl",), kinds=("drop",), magnitudes=(("drop", 0.25),)
        )
        (scenario,) = campaign.scenarios()
        assert scenario.magnitude == 0.25

    def test_unknown_override_kind_raises(self):
        campaign = FaultCampaign(circuits=("ctrl",), magnitudes=(("warp", 1.0),))
        with pytest.raises(ValueError):
            campaign.units()


class TestMarginSearch:
    def test_cap_probe_saturates(self):
        result = search_margin(lambda m: True, cap=8.0)
        assert result.saturated
        assert result.margin == 8.0
        assert result.probes == ((8.0, True),)

    def test_bisection_brackets_threshold(self):
        result = search_margin(lambda m: m <= 3.0, cap=8.0, iterations=8)
        assert not result.saturated
        assert 3.0 - 8.0 / 2**8 <= result.margin <= 3.0
        # Every probe at or below the found margin tolerated, above failed.
        for magnitude, ok in result.probes[1:]:
            assert ok == (magnitude <= 3.0)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            search_margin(lambda m: True, cap=0.0)


class TestFaultRecords:
    def test_margin_record_on_combinational_circuit(self):
        spec = FaultSpec.create(
            "ctrl", default_scenario("jitter"), patterns=16, margin=True
        )
        record = fault_record(spec)
        assert record["status"] == "tolerated"
        assert record["margin"] is not None and record["margin"] > 0.0
        assert record["margin_cap"] > 0.0
        assert record["margin_probes"]
        assert sum(record["injections"].values()) > 0
        assert record["counterexample"] is None

    def test_drop_everything_miscompares_with_localisation(self):
        spec = FaultSpec.create(
            "ctrl", default_scenario("drop", magnitude=1.0), patterns=8
        )
        record = fault_record(spec)
        assert record["status"] == "miscompare"
        assert record["counterexample"] is not None
        assert record["first_divergence_net"]
        assert record["injections"]["drop"] > 0

    def test_record_carries_no_wall_clock_fields(self):
        spec = FaultSpec.create("ctrl", default_scenario("skew"), patterns=8)
        record = fault_record(spec)
        assert not any("time" in k or "elapsed" in k or "wall" in k for k in record)
        # And running the same spec twice yields the identical record.
        assert fault_record(spec) == record


class TestReport:
    def _report(self, elapsed):
        spec = FaultSpec.create("ctrl", default_scenario("skew"), patterns=8)
        record = dict(fault_record(spec), flow_variant="default")
        campaign = FaultCampaign(circuits=("ctrl",), kinds=("skew",))
        return FaultReport(
            campaign, [record], jobs=2, computed=1, cached=0, elapsed_s=elapsed
        )

    def test_to_dict_independent_of_runtime_statistics(self):
        fast, slow = self._report(0.1), self._report(99.9)
        assert json.dumps(fast.to_dict(), sort_keys=True) == json.dumps(
            slow.to_dict(), sort_keys=True
        )
        assert fast.to_dict()["schema"] == FAULTS_SCHEMA

    def test_summary_and_coverage(self):
        report = self._report(1.0)
        summary = report.summary()
        assert summary["units"] == 1
        assert summary["all_nominal_equivalent"] is True
        coverage = report.coverage()
        assert "fault:default:skew:tolerated" in coverage.features()


class TestCli:
    def test_bad_kinds_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["faults", "--circuit", "ctrl", "--kinds", "gamma-ray"])

    def test_bad_magnitude_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(
                ["faults", "--circuit", "ctrl", "--magnitude", "jitter=two"]
            )
        with pytest.raises(SystemExit):
            cli.main(["faults", "--circuit", "ctrl", "--magnitude", "warp=1.0"])

    def test_catalog_and_circuit_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            cli.parse_args(["faults", "--catalog", "--circuit", "ctrl"])

    def test_end_to_end_report(self, tmp_path, capsys):
        report_path = tmp_path / "faults.json"
        rc = cli.main(
            [
                "faults",
                "--circuit", "ctrl",
                "--kinds", "jitter",
                "--patterns", "8",
                "--seed", "0",
                "--no-cache",
                "--report", str(report_path),
                "-q",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "TOLERATED" in out
        document = json.loads(report_path.read_text())
        assert document["schema"] == FAULTS_SCHEMA
        assert document["summary"]["all_nominal_equivalent"] is True
        (row,) = document["rows"]
        assert row["circuit"] == "ctrl"
        assert row["fault_kind"] == "jitter"

    def test_cache_replay_is_byte_identical(self, tmp_path, capsys):
        argv = [
            "faults",
            "--circuit", "ctrl",
            "--kinds", "skew",
            "--patterns", "8",
            "--cache-dir", str(tmp_path / "cache"),
            "-q",
        ]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert cli.main(argv + ["--report", str(first)]) == 0
        assert cli.main(argv + ["--report", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
