"""Cross-process determinism of the fault subsystem.

Same harness as ``tests/cov/test_hash_stability.py``: the identical
campaign runs in two interpreters with *different* ``PYTHONHASHSEED``
values.  Scenario names, the per-net injection event stream, and the
full ``repro-faults/1`` report JSON must come back byte-identical —
fault streams are seeded from sha256 of the net name, never from
Python's randomised string hash.
"""

import os
import subprocess
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_SNIPPET = """
import json

from repro.circuits import build
from repro.core import Flow
from repro.eval.runner import Runner
from repro.faults import FaultCampaign, default_scenario
from repro.sim.pulse import BatchedNetlistSimulator

for kind in ("drop", "dup", "jitter", "skew"):
    print(default_scenario(kind, seed=3).name())

result = Flow.default().run(build("ctrl", "quick"))
model = default_scenario("drop", seed=0, magnitude=0.2).model(record_log=True)
sim = BatchedNetlistSimulator(result.netlist, fault_model=model)
sim.run_combinational([
    {pi: (i + j) % 2 for j, pi in enumerate(sim.pi_names)} for i in range(4)
])
for aspect, net, when in model.injection_log():
    print(f"{aspect}@{net}@{when!r}")

campaign = FaultCampaign(
    circuits=("ctrl", "s27"), kinds=("jitter", "skew"), patterns=8, seed=0
)
report = Runner(jobs=1, cache=None).faults(campaign)
print(json.dumps(report.to_dict(), sort_keys=True))
"""


def _run(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


def test_two_subprocesses_agree_bit_for_bit():
    first = _run(hash_seed="1")
    second = _run(hash_seed="2")
    assert first == second
    lines = first.splitlines()
    assert lines[0] == "fault:drop:rate=0.01:s3"
    assert any(line.startswith("drop@") for line in lines)  # log is non-empty
    assert lines[-1].startswith('{"campaign":')  # sorted report JSON
