"""Unit tests of the seeded per-net fault model (``repro.faults.models``)."""

import pytest

from repro.faults import DUP_SPACING, FaultModel, stream_seed


def _bound(model, names):
    model.bind(list(names))
    return model


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultModel(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(dup_rate=-0.1)

    def test_magnitudes_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultModel(jitter=-1.0)
        with pytest.raises(ValueError):
            FaultModel(skew=-0.5)

    def test_noop_detection(self):
        assert FaultModel().is_noop()
        assert not FaultModel(jitter=1.0).is_noop()
        assert not FaultModel(skew=1.0).is_noop()


class TestStreams:
    def test_stream_seed_is_name_keyed_and_distinct(self):
        assert stream_seed(0, "net_a") == stream_seed(0, "net_a")
        assert stream_seed(0, "net_a") != stream_seed(0, "net_b")
        assert stream_seed(0, "net_a") != stream_seed(1, "net_a")

    def test_zero_magnitude_returns_time_unchanged(self):
        model = _bound(FaultModel(), ["n0", "n1"])
        assert model.emissions(0, 12.5, 10.0) == (12.5,)
        assert model.emissions(1, 7.0, 7.0) == (7.0,)
        assert model.injection_counts() == {"drop": 0, "dup": 0, "jitter": 0}

    def test_jitter_is_deterministic_per_net(self):
        a = _bound(FaultModel(jitter=3.0, seed=5), ["x", "y"])
        b = _bound(FaultModel(jitter=3.0, seed=5), ["x", "y"])
        seq_a = [a.emissions(0, 100.0, 90.0) for _ in range(50)]
        seq_b = [b.emissions(0, 100.0, 90.0) for _ in range(50)]
        assert seq_a == seq_b
        # A different net name draws a different stream.
        assert seq_a != [b.emissions(1, 100.0, 90.0) for _ in range(50)]

    def test_jitter_bounded_and_clamped_to_cause(self):
        model = _bound(FaultModel(jitter=4.0, seed=0), ["n"])
        for _ in range(200):
            (out,) = model.emissions(0, 10.0, 9.0)
            assert 9.0 <= out <= 14.0  # clamped below, bounded above

    def test_drop_rate_one_swallows_everything(self):
        model = _bound(FaultModel(drop_rate=1.0), ["n"])
        assert model.emissions(0, 5.0, 4.0) == ()
        assert model.injection_counts()["drop"] == 1

    def test_dup_rate_one_echoes_everything(self):
        model = _bound(FaultModel(dup_rate=1.0), ["n"])
        out = model.emissions(0, 5.0, 4.0)
        assert out == (5.0, 5.0 + DUP_SPACING)
        assert model.injection_counts()["dup"] == 1

    def test_reset_streams_replays_identically(self):
        model = _bound(FaultModel(jitter=2.0, drop_rate=0.3, seed=9), ["n"])
        first = [model.emissions(0, 50.0, 40.0) for _ in range(30)]
        model.reset_streams()
        second = [model.emissions(0, 50.0, 40.0) for _ in range(30)]
        assert first == second

    def test_totals_survive_reset_streams(self):
        model = _bound(FaultModel(jitter=1.0), ["n"])
        model.emissions(0, 1.0, 0.0)
        model.reset_streams()
        model.emissions(0, 1.0, 0.0)
        assert model.injection_counts()["jitter"] == 2


class TestCloneAndLog:
    def test_clone_replays_the_same_stream(self):
        model = _bound(FaultModel(jitter=2.0, seed=3), ["a", "b"])
        draws = [model.emissions(0, 10.0, 0.0) for _ in range(10)]
        clone = _bound(model.clone(), ["a", "b"])
        assert clone.params() == model.params()
        # A clone starts with fresh streams and fresh counters ...
        assert clone.injection_counts() == {"drop": 0, "dup": 0, "jitter": 0}
        # ... and replays the original's draw sequence exactly.
        assert [clone.emissions(0, 10.0, 0.0) for _ in range(10)] == draws
        assert clone.injection_counts() == model.injection_counts()

    def test_injection_log_gated_on_record_log(self):
        silent = _bound(FaultModel(drop_rate=1.0), ["n"])
        silent.emissions(0, 1.0, 0.0)
        with pytest.raises(ValueError):
            silent.injection_log()
        logged = _bound(FaultModel(drop_rate=1.0, record_log=True), ["n"])
        logged.emissions(0, 1.0, 0.0)
        assert logged.injection_log() == [("drop", "n", 1.0)]
