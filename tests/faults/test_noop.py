"""The no-op guarantee: zero-magnitude faults reproduce nominal traces.

A zero-rate / zero-magnitude :class:`FaultModel` still routes every cell
emission through the injection hook — that is the point: the *code path*
under test is the faulty one, and its output must be byte-identical to a
simulator without any model installed.  ``ReferencePulseSimulator``
remains the fault-free differential oracle throughout.
"""

import pytest

from repro.circuits import build
from repro.core import Flow
from repro.faults import FaultModel, default_scenario
from repro.sim.pulse import BatchedNetlistSimulator

#: Catalog samples: combinational + sequential, small enough to be fast.
SAMPLES = ("ctrl", "int2float", "s27", "s298")


@pytest.fixture(scope="module")
def synthesized():
    return {name: Flow.default().run(build(name, "quick")) for name in SAMPLES}


def _vectors(sim, count=6):
    return [
        {pi: (i + j) % 2 for j, pi in enumerate(sim.pi_names)}
        for i in range(count)
    ]


def _run(sim, vectors):
    if sim.is_sequential:
        return sim.run_sequence(vectors)
    return sim.run_combinational(vectors)


@pytest.mark.parametrize("name", SAMPLES)
@pytest.mark.parametrize("kind", ["drop", "dup", "jitter", "skew"])
def test_zero_magnitude_scenario_is_bit_exact(synthesized, name, kind):
    result = synthesized[name]
    plain = BatchedNetlistSimulator(result.netlist, full_trace=True)
    model = default_scenario(kind, seed=0).with_magnitude(0.0).model()
    assert model.is_noop()
    faulty = BatchedNetlistSimulator(
        result.netlist, full_trace=True, fault_model=model
    )
    vectors = _vectors(plain)
    nominal, injected = _run(plain, vectors), _run(faulty, vectors)
    assert injected.trace == nominal.trace
    assert injected.outputs == nominal.outputs
    assert model.injection_counts() == {"drop": 0, "dup": 0, "jitter": 0}


def test_zero_magnitude_survives_resets(synthesized):
    """Sequential batching resets between trajectories; still bit-exact."""
    result = synthesized["s27"]
    plain = BatchedNetlistSimulator(result.netlist, full_trace=True)
    faulty = BatchedNetlistSimulator(
        result.netlist, full_trace=True, fault_model=FaultModel()
    )
    for offset in range(3):
        vectors = [
            {pi: (i + offset) % 2 for pi in plain.pi_names} for i in range(4)
        ]
        assert faulty.run_sequence(vectors).trace == plain.run_sequence(vectors).trace


def test_reference_simulator_has_no_fault_hook():
    """The differential oracle stays fault-free by construction."""
    from repro.sim.pulse import ReferencePulseSimulator

    assert not hasattr(ReferencePulseSimulator, "set_fault_model")


def test_nonzero_jitter_changes_internal_timing(synthesized):
    """Sanity: the hook is live — a real magnitude perturbs the trace."""
    result = synthesized["ctrl"]
    plain = BatchedNetlistSimulator(result.netlist, full_trace=True)
    model = default_scenario("jitter", seed=0).model()  # 2 ps
    faulty = BatchedNetlistSimulator(
        result.netlist, full_trace=True, fault_model=model
    )
    vectors = _vectors(plain)
    assert faulty.run_combinational(vectors).trace != plain.run_combinational(vectors).trace
    assert model.injection_counts()["jitter"] > 0
