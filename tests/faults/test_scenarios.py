"""Scenario grammar and registry tests (``repro.faults.scenario``)."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultScenario,
    default_scenario,
    fault_kind,
    fault_kind_names,
    is_fault_name,
    parse_fault_name,
)


class TestRegistry:
    def test_kind_names_sorted_and_complete(self):
        assert fault_kind_names() == ["drop", "dup", "jitter", "skew"]
        assert set(fault_kind_names()) == set(FAULT_KINDS)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_kind("gamma-ray")

    def test_rate_kinds_flagged(self):
        assert fault_kind("drop").rate_like
        assert fault_kind("dup").rate_like
        assert not fault_kind("jitter").rate_like
        assert not fault_kind("skew").rate_like


class TestScenario:
    def test_name_round_trips_every_kind(self):
        for kind in fault_kind_names():
            scenario = default_scenario(kind, seed=7)
            assert is_fault_name(scenario.name())
            assert parse_fault_name(scenario.name()) == scenario

    def test_canonical_names(self):
        assert default_scenario("jitter").name() == "fault:jitter:mag=2.0:s0"
        assert default_scenario("drop", seed=7).name() == "fault:drop:rate=0.01:s7"

    def test_with_magnitude_round_trips(self):
        probe = default_scenario("skew").with_magnitude(17.25)
        assert probe.magnitude == 17.25
        assert parse_fault_name(probe.name()) == probe

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            FaultScenario.create("jitter", wobble=3.0)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            FaultScenario.create("drop", rate=1.5)
        with pytest.raises(ValueError):
            FaultScenario.create("jitter", mag=-1.0)
        FaultScenario.create("drop", rate=1.0)  # boundary is legal

    def test_model_mapping(self):
        assert default_scenario("drop").model().drop_rate == 0.01
        assert default_scenario("dup").model().dup_rate == 0.01
        assert default_scenario("jitter").model().jitter == 2.0
        skew_model = default_scenario("skew", seed=3).model()
        assert skew_model.skew == 5.0
        assert skew_model.seed == 3
        # skew is stimulus-side: the model itself never perturbs emissions
        skew_model.bind(["n"])
        assert skew_model.emissions(0, 9.0, 8.0) == (9.0,)

    def test_magnitude_override_via_default_scenario(self):
        assert default_scenario("jitter", magnitude=11.0).magnitude == 11.0


class TestParsing:
    @pytest.mark.parametrize(
        "bad",
        [
            "gen:dag:gates=4:s0",
            "fault:jitter:mag=2.0",
            "fault:jitter:mag=2.0:x0",
            "fault:jitter:mag=2.0:s0:extra",
            "fault:jitter:mag=:s0",
            "fault:jitter:=2.0:s0",
            "fault:jitter:mag=two:s0",
            "fault:jitter:mag=2.0:snan",
            "fault:warp:mag=2.0:s0",
        ],
    )
    def test_malformed_names_raise(self, bad):
        with pytest.raises(ValueError):
            parse_fault_name(bad)

    def test_is_fault_name(self):
        assert is_fault_name("fault:jitter:mag=2.0:s0")
        assert not is_fault_name("gen:dag:gates=4:s0")
