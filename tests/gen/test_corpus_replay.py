"""Regression-seed corpus replay.

Every JSON file under ``tests/gen/corpus/`` pins one ``(family, params,
seed)`` triple — typically a circuit that once exposed a bug — together
with the flow variants it must stay EQUIVALENT under.  The full replay
runs with ``-m fuzz`` (a dedicated CI job); tier-1 keeps a single-entry
smoke test so the corpus format itself cannot rot unnoticed.

Adding an entry: take the ``gen:<family>:<params>:s<seed>`` name from a
``repro fuzz`` failure line, split it into the JSON fields below (see
``docs/fuzzing.md``), and describe the bug in ``note``.
"""

import json
from pathlib import Path

import pytest

from repro.eval import Runner
from repro.gen import FuzzCampaign, GenSpec
from repro.gen.fuzz import FuzzUnit

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _units(entry: dict) -> list:
    gen = GenSpec.create(
        entry["family"], seed=entry["seed"], **entry.get("params", {})
    )
    return [
        FuzzUnit.create(
            gen,
            flow_name,
            patterns=int(entry.get("patterns", 32)),
            sequence_length=int(entry.get("sequence_length", 8)),
        )
        for flow_name in entry["flows"]
    ]


def _replay(entry: dict) -> None:
    units = _units(entry)
    campaign = FuzzCampaign(budget=0, flows=tuple(entry["flows"]))
    report = Runner(jobs=1, cache=None).fuzz(campaign, units=units, shrink=False)
    bad = [
        f"{r['circuit']} under {r['flow_variant']}: {r['status']}"
        for r in report.records
        if r["status"] != "equivalent"
    ]
    assert not bad, f"corpus regression ({entry.get('note', '')}): {bad}"


def test_corpus_is_present_and_well_formed():
    assert CORPUS_FILES, "tests/gen/corpus/ must hold at least one entry"
    for path in CORPUS_FILES:
        entry = _load(path)
        assert {"family", "params", "seed", "flows"} <= set(entry), path.name
        # The spec must be constructible (validates family + param names).
        GenSpec.create(entry["family"], seed=entry["seed"], **entry["params"])


def test_smallest_corpus_entry_replays_in_tier1():
    entry = _load(CORPUS_DIR / "dag-tiny.json")
    _replay(entry)


@pytest.mark.fuzz
@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_entry_still_verifies_equivalent(path):
    _replay(_load(path))
