"""Cross-process determinism: the contract the fuzz cache is built on.

Generating the same ``(family, params, seed)`` in two *separate* Python
processes — with different hash seeds, to flush out any accidental
dependence on set/dict iteration order — must produce byte-identical
netlists and identical ``VerificationSpec.key()`` content hashes.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.gen import FAMILIES

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_SNIPPET = """
import hashlib
from repro.gen import GenSpec
from repro.core import flow_variant
from repro.netlist.bench import write_bench
from repro.verify.campaign import VerificationSpec

spec = GenSpec.create({family!r}, seed=1234)
bench = write_bench(spec.build())
vspec = VerificationSpec.create(
    spec.name(), flow=flow_variant("default"), patterns=32, seed=0
)
print(hashlib.sha256(bench.encode()).hexdigest())
print(vspec.key())
"""


def _run(family: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET.format(family=family)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_two_subprocesses_agree_bit_for_bit(family):
    first = _run(family, hash_seed="1")
    second = _run(family, hash_seed="2")
    assert first == second
    bench_hash, spec_key = first.splitlines()
    assert len(bench_hash) == 64 and len(spec_key) == 64
