"""Random-circuit families: validity, determinism, the name grammar."""

import pytest

from repro.circuits import CATALOG, build, info
from repro.gen import (
    FAMILIES,
    GenSpec,
    build_named,
    generate_specs,
    is_gen_name,
    parse_name,
    register_spec,
)
from repro.netlist.bench import write_bench


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_builds_valid_networks(self, family):
        for seed in range(5):
            spec = GenSpec.create(family, seed=seed)
            network = spec.build()
            network.validate()
            assert network.outputs, "generated circuits must expose outputs"
            assert network.inputs, "generated circuits must expose inputs"
            if FAMILIES[family].kind == "sequential":
                assert network.latches
            else:
                assert network.is_combinational()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_same_seed_same_netlist(self, family):
        spec = GenSpec.create(family, seed=11)
        assert write_bench(spec.build()) == write_bench(spec.build())

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_different_seeds_differ(self, family):
        texts = {write_bench(GenSpec.create(family, seed=s).build()) for s in range(8)}
        assert len(texts) > 1

    def test_parameters_shape_the_circuit(self):
        small = GenSpec.create("dag", seed=0, inputs=3, gates=5).build()
        large = GenSpec.create("dag", seed=0, inputs=8, gates=40).build()
        assert len(large.inputs) > len(small.inputs)
        assert large.num_gates() > small.num_gates()
        wide = GenSpec.create("fsm", seed=0, state=5).build()
        assert len(wide.latches) == 5

    def test_unknown_family_and_params_raise(self):
        with pytest.raises(KeyError, match="unknown circuit family"):
            GenSpec.create("nosuch", seed=0)
        with pytest.raises(ValueError, match="no parameter"):
            GenSpec.create("dag", seed=0, bogus=3)


class TestNameGrammar:
    def test_name_round_trips(self):
        for family in sorted(FAMILIES):
            for seed in (0, 7, 2**31):
                spec = GenSpec.create(family, seed=seed)
                assert is_gen_name(spec.name())
                assert parse_name(spec.name()) == spec

    def test_name_round_trips_with_overrides(self):
        spec = GenSpec.create("fsm", seed=5, moore=True, state=4)
        again = parse_name(spec.name())
        assert again == spec
        assert dict(again.params)["moore"] is True

    def test_build_named_matches_spec_build(self):
        spec = GenSpec.create("arith", seed=9, mutations=3)
        assert write_bench(build_named(spec.name())) == write_bench(spec.build())

    def test_malformed_names_rejected(self):
        for bad in ("c880", "gen:dag", "gen:dag:gates=1:x3", "gen:dag:gates:s1"):
            with pytest.raises((ValueError, KeyError)):
                parse_name(bad)


class TestRegistryIntegration:
    def test_registry_resolves_gen_names_without_registration(self):
        spec = GenSpec.create("dag", seed=21)
        assert spec.name() not in CATALOG
        entry = info(spec.name())
        assert entry.suite == "gen"
        assert entry.kind == "combinational"
        network = build(spec.name())
        assert write_bench(network) == write_bench(spec.build())

    def test_register_spec_is_idempotent_and_listable(self):
        spec = GenSpec.create("fsm", seed=33)
        try:
            first = register_spec(spec)
            second = register_spec(spec)
            assert first is second
            assert CATALOG[spec.name()].kind == "sequential"
        finally:
            CATALOG.pop(spec.name(), None)

    def test_unknown_plain_names_still_raise(self):
        with pytest.raises(KeyError):
            info("definitely-not-a-circuit")


class TestGenerateSpecs:
    def test_deterministic_and_budget_sized(self):
        a = generate_specs(12, seed=4)
        b = generate_specs(12, seed=4)
        assert a == b
        assert len(a) == 12
        assert {s.family for s in a} == set(FAMILIES)

    def test_family_filter_and_distinct_seeds(self):
        specs = generate_specs(10, seed=0, families=["dag"])
        assert all(s.family == "dag" for s in specs)
        assert len({s.seed for s in specs}) == len(specs)

    def test_different_master_seed_changes_campaign(self):
        assert generate_specs(6, seed=0) != generate_specs(6, seed=1)
