"""Differential fuzzing campaigns: scheduling, fault injection, shrinking."""

import pytest

from repro.core import Rail
from repro.core.flowgraph import (
    FLOW_VARIANTS,
    Flow,
    flow_variant,
    flow_variant_names,
    register_flow_variant,
    register_stage,
)
from repro.eval import Runner
from repro.eval.cli import parse_args
from repro.gen import DEFAULT_FLOWS, FuzzCampaign, GenSpec, shrink_unit
from repro.gen.fuzz import replay_line, units_for_replay


# ---------------------------------------------------------------------------
# Fault injection: a flow variant that mis-decodes the first output port.
# ---------------------------------------------------------------------------


@register_stage(
    "test-break-output",
    description="test-only fault injection: flips output port 0's rail",
)
def _break_output_stage(state, options):
    state = state.copy()
    port = state.result.netlist.output_ports[0]
    port.rail = Rail.NEG if port.rail is Rail.POS else Rail.POS
    return state


register_flow_variant(
    "test-broken",
    lambda: Flow.default().with_stage("test-break-output"),
    "test-only: default flow with a fault-injected output decode",
)


class TestFlowVariants:
    def test_builtin_variants_registered(self):
        names = flow_variant_names()
        for expected in ("default", "direct", "positive", "no-retime", "unopt"):
            assert expected in names
        assert set(DEFAULT_FLOWS) <= set(names)

    def test_variant_factories_build_fresh_flows(self):
        a, b = flow_variant("default"), flow_variant("default")
        assert a is not b
        assert a.signature() == b.signature()
        assert flow_variant("direct").stage_options("polarity")["mode"] == "direct"
        assert flow_variant("no-retime").stage_options("sequential")["retime"] is False

    def test_unknown_variant_names_the_known_ones(self):
        from repro.core import FlowError

        with pytest.raises(FlowError, match="default"):
            flow_variant("nope")


class TestCampaign:
    def test_units_cross_circuits_with_flows(self):
        campaign = FuzzCampaign(budget=4, seed=0, flows=("default", "direct"))
        units = campaign.units()
        assert len(units) == 8
        circuits = {u.spec.circuit for u in units}
        assert len(circuits) == 4
        assert {u.flow_name for u in units} == {"default", "direct"}
        # Campaigns are pure functions of their identity.
        assert [u.spec.key() for u in units] == [
            u.spec.key() for u in FuzzCampaign(budget=4, seed=0, flows=("default", "direct")).units()
        ]

    def test_small_campaign_all_equivalent(self):
        campaign = FuzzCampaign(budget=3, seed=1, patterns=16, flows=DEFAULT_FLOWS)
        report = Runner(jobs=1, cache=None).fuzz(campaign)
        assert report.all_equivalent
        assert len(report.records) == 3 * len(DEFAULT_FLOWS)
        summary = report.summary()
        assert summary["circuits"] == 3 and summary["counterexamples"] == 0
        assert "Family" in report.table()
        payload = report.to_dict()
        assert payload["experiment"] == "fuzz"
        assert payload["campaign"]["budget"] == 3

    def test_injected_failure_is_caught_and_shrunk(self):
        campaign = FuzzCampaign(
            budget=2, seed=0, families=("dag",), flows=("test-broken",), patterns=12
        )
        report = Runner(jobs=1, cache=None).fuzz(campaign, shrink=True)
        assert not report.all_equivalent
        assert len(report.failures) == 2
        for record in report.failures:
            assert record["flow_variant"] == "test-broken"
            assert record["circuit"].startswith("gen:dag:")
            line = replay_line(record)
            assert record["circuit"] in line and "--replay" in line
        # Every failure carries a shrunk minimal reproducer.
        assert len(report.shrunk) == 2
        for shrunk in report.shrunk.values():
            assert shrunk["final_gates"] <= shrunk["initial_gates"]
            assert "INPUT(" in shrunk["bench"] and "OUTPUT(" in shrunk["bench"]

    def test_failure_replays_from_its_printed_identity(self):
        campaign = FuzzCampaign(
            budget=1, seed=0, families=("dag",), flows=("test-broken",), patterns=12
        )
        report = Runner(jobs=1, cache=None).fuzz(campaign, shrink=False)
        failing_name = report.failures[0]["circuit"]
        units = units_for_replay(failing_name, ["test-broken", "default"], patterns=12)
        replay = Runner(jobs=1, cache=None).fuzz(campaign, units=units, shrink=False)
        statuses = {r["flow_variant"]: r["status"] for r in replay.records}
        assert statuses["test-broken"] == "counterexample"
        assert statuses["default"] == "equivalent"

    def test_verdicts_are_cached_across_runs(self, tmp_path):
        from repro.eval import ResultCache

        cache = ResultCache(tmp_path)
        campaign = FuzzCampaign(budget=2, seed=3, flows=("default",), patterns=16)
        first = Runner(jobs=1, cache=cache).fuzz(campaign)
        second = Runner(jobs=1, cache=cache).fuzz(campaign)
        assert first.computed == 2 and first.cached == 0
        assert second.computed == 0 and second.cached == 2
        assert [r["status"] for r in first.records] == [
            r["status"] for r in second.records
        ]


class TestShrinking:
    def test_shrink_unit_minimises_the_injected_failure(self):
        gen = GenSpec.create("dag", seed=2, gates=30)
        original_gates = gen.build().num_gates()
        result = shrink_unit(gen, "test-broken", patterns=12)
        assert result is not None
        assert result.final_gates < original_gates
        # The rail flip fails on any surviving output, so shrinking should
        # reach a tiny core (a handful of gates at most).
        assert result.final_gates <= 3
        assert result.accepted > 0
        result.network.validate()

    def test_shrink_unit_returns_none_when_failure_does_not_reproduce(self):
        gen = GenSpec.create("dag", seed=2)
        assert shrink_unit(gen, "default", patterns=12) is None


class TestCliParsing:
    def test_fuzz_defaults(self):
        args = parse_args(["fuzz"])
        assert args.command == "fuzz"
        assert args.budget == 100 and args.seed == 0
        assert args.family is None and args.flows == list(DEFAULT_FLOWS)
        assert args.patterns == 64 and not args.no_shrink and args.replay is None

    def test_fuzz_flags(self):
        args = parse_args(
            [
                "fuzz", "--budget", "50", "--seed", "9",
                "--family", "dag", "--family", "fsm",
                "--flows", "default", "direct",
                "--patterns", "32", "--no-shrink", "-j", "4", "--no-cache", "-q",
            ]
        )
        assert args.budget == 50 and args.seed == 9
        assert args.family == ["dag", "fsm"]
        assert args.flows == ["default", "direct"]
        assert args.patterns == 32 and args.no_shrink
        assert args.jobs == 4 and args.no_cache and args.quiet

    def test_fuzz_rejects_unknown_family_and_flow(self):
        with pytest.raises(SystemExit):
            parse_args(["fuzz", "--family", "nosuch"])
        with pytest.raises(SystemExit):
            parse_args(["fuzz", "--flows", "nosuch"])


class TestCliEndToEnd:
    def test_fuzz_smoke_exit_zero(self, capsys):
        from repro.eval import cli

        code = cli.main(
            ["fuzz", "--budget", "2", "--patterns", "12", "--no-cache", "-q",
             "--flows", "default"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all_equivalent: True" in out

    def test_fuzz_failure_prints_replay_line_and_reproducer(self, capsys):
        from repro.eval import cli

        code = cli.main(
            ["fuzz", "--budget", "1", "--family", "dag", "--patterns", "12",
             "--flows", "test-broken", "--no-cache", "-q"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED equivalence" in out
        assert "--replay 'gen:dag:" in out
        assert "minimal reproducer" in out

    def test_fuzz_replay_subcommand(self, capsys):
        from repro.eval import cli

        name = GenSpec.create("dag", seed=4).name()
        code = cli.main(
            ["fuzz", "--replay", name, "--flows", "default", "--patterns", "12",
             "--no-cache", "-q"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz replay" in out

    def test_fuzz_replay_rejects_malformed_names(self):
        from repro.eval import cli

        with pytest.raises(SystemExit, match="bad --replay"):
            cli.main(["fuzz", "--replay", "gen:dag:broken", "--no-cache", "-q"])


@pytest.fixture(autouse=True, scope="module")
def _cleanup_test_variant():
    yield
    FLOW_VARIANTS.pop("test-broken", None)
