"""Property-based round-trips over randomized inputs from the generators.

Two families of properties:

* ``FlowOptions.to_dict`` / ``from_dict`` is a lossless pair for every
  (randomly drawn) option combination;
* the netlist writers reach a **write -> parse -> write fixpoint**: the
  second and third generations of text are byte-identical, and parsing
  preserves circuit function — checked on random circuits from every
  :mod:`repro.gen` family, which exercise the full gate alphabet
  (including MUX/XNOR covers and latches) far beyond the hand-written
  format tests.
"""

import random

import pytest

from repro.core import FlowOptions
from repro.gen import FAMILIES, GenSpec
from repro.netlist import (
    parse_bench,
    parse_blif,
    parse_verilog,
    write_bench,
    write_blif,
    write_verilog,
)

EFFORTS = ("none", "low", "medium", "high")
STYLES = ("balanced", "chain")


def _random_options(rng: random.Random) -> FlowOptions:
    return FlowOptions(
        effort=rng.choice(EFFORTS),
        optimize_polarity=bool(rng.getrandbits(1)),
        direct_mapping=bool(rng.getrandbits(1)),
        retime=bool(rng.getrandbits(1)),
        pipeline_stages=rng.randint(0, 4),
        splitter_style=rng.choice(STYLES),
        polarity_sweeps=rng.randint(1, 8),
        verify=bool(rng.getrandbits(1)),
    )


class TestFlowOptionsRoundTrip:
    def test_to_dict_from_dict_is_lossless_over_random_options(self):
        rng = random.Random(2024)
        for _ in range(64):
            options = _random_options(rng)
            again = FlowOptions.from_dict(options.to_dict())
            assert again == options
            # Idempotent: a second trip changes nothing.
            assert FlowOptions.from_dict(again.to_dict()) == options

    def test_partial_dicts_fill_defaults(self):
        options = FlowOptions.from_dict({"effort": "low"})
        assert options.effort == "low"
        assert options.retime is FlowOptions().retime

    def test_unknown_keys_rejected_with_field_names(self):
        with pytest.raises(ValueError, match="valid keys"):
            FlowOptions.from_dict({"efort": "low"})


WRITERS = {
    "bench": (write_bench, parse_bench),
    "blif": (write_blif, parse_blif),
    "verilog": (write_verilog, parse_verilog),
}


def _specs():
    return [
        GenSpec.create(family, seed=seed)
        for family in sorted(FAMILIES)
        for seed in (0, 5, 23)
    ]


@pytest.mark.parametrize("fmt", sorted(WRITERS))
class TestWriterFixpoints:
    def test_write_parse_write_fixpoint(self, fmt):
        write, parse = WRITERS[fmt]
        for spec in _specs():
            network = spec.build()
            first = write(network)
            reparsed = parse(first)
            second = write(reparsed)
            third = write(parse(second))
            assert second == third, f"{fmt} not a fixpoint for {spec.name()}"

    def test_roundtrip_preserves_function(self, fmt):
        write, parse = WRITERS[fmt]
        for spec in _specs():
            network = spec.build()
            again = parse(write(network))
            assert again.inputs == network.inputs
            assert len(again.outputs) == len(network.outputs)
            assert len(again.latches) == len(network.latches)
            rng = random.Random(spec.seed)
            # Formats without an initial-state syntax (.bench, structural
            # Verilog) cannot round-trip latch inits, so both sides start
            # from the original's init values: the property under test is
            # that the *logic* survives the trip.
            init = {latch.name: latch.init for latch in network.latches}
            state = dict(init)
            state2 = dict(init)
            for _ in range(16):
                vector = {pi: rng.randint(0, 1) for pi in network.inputs}
                out1, state = network.evaluate(vector, state)
                out2, state2 = again.evaluate(vector, state2)
                assert list(out1.values()) == list(out2.values()), (
                    f"{fmt} changed function of {spec.name()} on {vector}"
                )
