"""Tests for the .bench / BLIF / structural-Verilog readers and writers."""

import pytest

from repro.netlist import (
    GateType,
    NetworkBuilder,
    networks_equivalent,
    parse_bench,
    parse_blif,
    parse_verilog,
    truth_tables,
    write_bench,
    write_blif,
    write_verilog,
)
from repro.netlist.bench import BenchParseError
from repro.netlist.blif import BlifParseError
from repro.netlist.verilog import VerilogParseError

BENCH_TEXT = """
# tiny sequential example
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G7 = DFF(G10)
G10 = NAND(G0, G7)
G17 = NOT(G10)
"""


def small_network():
    b = NetworkBuilder("roundtrip")
    x, y, z = b.input("x"), b.input("y"), b.input("z")
    b.output(b.or_(b.and_(x, y), b.xor(y, z)), "f")
    b.output(b.nand(x, z), "g")
    return b.finish()


class TestBench:
    def test_parse_bench_structure(self):
        net = parse_bench(BENCH_TEXT, name="tiny")
        assert net.inputs == ["G0", "G1"]
        assert net.outputs == ["G17"]
        assert len(net.latches) == 1
        assert net.gate("G10").gate_type is GateType.NAND

    def test_bench_roundtrip_preserves_function(self):
        net = small_network()
        again = parse_bench(write_bench(net), name=net.name)
        assert networks_equivalent(net, again)

    def test_bench_parse_error_reports_line(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nb = FROB(a)\n")

    def test_bench_unknown_signal(self):
        from repro.netlist import NetworkError

        with pytest.raises(NetworkError):
            parse_bench("OUTPUT(y)\ny = AND(a, b)\n")


class TestBlif:
    def test_blif_roundtrip_preserves_function(self):
        net = small_network()
        again = parse_blif(write_blif(net))
        # BLIF lowering introduces helper signals, so compare by truth table
        # of the named outputs.
        original = truth_tables(net)
        recovered = truth_tables(again)
        assert original == recovered

    def test_parse_simple_cover(self):
        text = """
.model cover
.inputs a b
.outputs y
.names a b y
11 1
0- 1
.end
"""
        net = parse_blif(text)
        assert net.output_vector({"a": 1, "b": 1}) == (1,)
        assert net.output_vector({"a": 0, "b": 0}) == (1,)
        assert net.output_vector({"a": 1, "b": 0}) == (0,)

    def test_parse_latch_and_constants(self):
        text = """
.model seq
.inputs d
.outputs q one
.latch d q re clk 1
.names one
1
.end
"""
        net = parse_blif(text)
        assert len(net.latches) == 1
        assert net.latches[0].init == 1
        outputs, _ = net.evaluate({"d": 0})
        assert outputs["one"] == 1

    def test_blif_error_on_mixed_polarity(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n"
        with pytest.raises(BlifParseError):
            parse_blif(text)


class TestVerilog:
    def test_verilog_roundtrip_preserves_function(self):
        net = small_network()
        again = parse_verilog(write_verilog(net))
        assert truth_tables(net) == truth_tables(again)

    def test_parse_gate_primitives(self):
        text = """
module m(a, b, y);
  input a, b;
  output y;
  wire w;
  nand g1 (w, a, b);
  not g2 (y, w);
endmodule
"""
        net = parse_verilog(text)
        assert net.output_vector({"a": 1, "b": 1}) == (1,)
        assert net.output_vector({"a": 0, "b": 1}) == (0,)

    def test_parse_assign_and_constants(self):
        text = """
module m(a, y, k);
  input a;
  output y, k;
  assign y = ~a;
  assign k = 1'b1;
endmodule
"""
        net = parse_verilog(text)
        outputs, _ = net.evaluate({"a": 1})
        assert outputs["y"] == 0
        assert outputs["k"] == 1

    def test_verilog_sequential_roundtrip(self):
        b = NetworkBuilder("seq")
        d = b.input("d")
        q = b.dff(d, name="q")
        b.output(q, "qo")
        net = b.finish()
        again = parse_verilog(write_verilog(net))
        assert len(again.latches) == 1

    def test_error_on_unknown_statement(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module m(a); input a; always @(posedge clk) q <= a; endmodule")
