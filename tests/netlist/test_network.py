"""Unit tests for the gate-level network substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import GateType, LogicNetwork, NetworkBuilder, NetworkError


def build_and_or():
    net = LogicNetwork("small")
    net.add_input("a")
    net.add_input("b")
    net.add_input("c")
    net.add_gate("ab", GateType.AND, ["a", "b"])
    net.add_gate("y", GateType.OR, ["ab", "c"])
    net.add_output("y")
    net.validate()
    return net


class TestConstruction:
    def test_inputs_and_gates_registered(self):
        net = build_and_or()
        assert net.inputs == ["a", "b", "c"]
        assert net.outputs == ["y"]
        assert net.num_gates() == 2

    def test_duplicate_signal_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")

    def test_missing_fanin_detected_by_validate(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("y", GateType.AND, ["a", "ghost"])
        net.add_output("y")
        with pytest.raises(NetworkError):
            net.validate()

    def test_unknown_output_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_output("nope")
        with pytest.raises(NetworkError):
            net.validate()

    def test_arity_checks(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_gate("y", GateType.NOT, ["a", "a"])
        with pytest.raises(NetworkError):
            net.add_gate("z", GateType.MUX, ["a"])

    def test_combinational_cycle_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("x", GateType.AND, ["a", "y"])
        net.add_gate("y", GateType.AND, ["a", "x"])
        net.add_output("y")
        with pytest.raises(NetworkError):
            net.validate()

    def test_cycle_through_latch_is_legal(self):
        net = LogicNetwork()
        net.add_input("en")
        net.add_latch("q", "nq")
        net.add_gate("nq", GateType.XOR, ["q", "en"])
        net.add_output("q")
        net.validate()
        assert not net.is_combinational()


class TestEvaluation:
    def test_and_or_truth(self):
        net = build_and_or()
        assert net.output_vector({"a": 1, "b": 1, "c": 0}) == (1,)
        assert net.output_vector({"a": 1, "b": 0, "c": 0}) == (0,)
        assert net.output_vector({"a": 0, "b": 0, "c": 1}) == (1,)

    def test_all_gate_types(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_input("s")
        cases = {
            "g_and": (GateType.AND, ["a", "b"], lambda a, b, s: a & b),
            "g_nand": (GateType.NAND, ["a", "b"], lambda a, b, s: 1 - (a & b)),
            "g_or": (GateType.OR, ["a", "b"], lambda a, b, s: a | b),
            "g_nor": (GateType.NOR, ["a", "b"], lambda a, b, s: 1 - (a | b)),
            "g_xor": (GateType.XOR, ["a", "b"], lambda a, b, s: a ^ b),
            "g_xnor": (GateType.XNOR, ["a", "b"], lambda a, b, s: 1 - (a ^ b)),
            "g_not": (GateType.NOT, ["a"], lambda a, b, s: 1 - a),
            "g_buf": (GateType.BUF, ["a"], lambda a, b, s: a),
            "g_mux": (GateType.MUX, ["s", "a", "b"], lambda a, b, s: b if s else a),
        }
        for name, (gtype, fanins, _) in cases.items():
            net.add_gate(name, gtype, fanins)
            net.add_output(name)
        net.validate()
        for a in (0, 1):
            for b in (0, 1):
                for s in (0, 1):
                    outputs, _ = net.evaluate({"a": a, "b": b, "s": s})
                    for name, (_, _, fn) in cases.items():
                        assert outputs[name] == fn(a, b, s), name

    def test_missing_input_raises(self):
        net = build_and_or()
        with pytest.raises(NetworkError):
            net.evaluate({"a": 1, "b": 0})

    def test_sequential_counter_behaviour(self):
        builder = NetworkBuilder("cnt")
        en = builder.input("en")
        q0 = builder.dff(builder.const(0), name="q0")
        q1 = builder.dff(builder.const(0), name="q1")
        builder.network.gates["q0"].fanins = [builder.xor(q0, en)]
        builder.network.gates["q1"].fanins = [builder.xor(q1, builder.and_(q0, en))]
        builder.output(q0, "o0")
        builder.output(q1, "o1")
        net = builder.finish()
        trace = net.simulate_sequence([{"en": 1}] * 5)
        values = [t["o1"] * 2 + t["o0"] for t in trace]
        assert values == [0, 1, 2, 3, 0]

    def test_latch_init_value_respected(self):
        net = LogicNetwork()
        net.add_input("d")
        net.add_latch("q", "d", init=1)
        net.add_output("q")
        outputs, state = net.evaluate({"d": 0})
        assert outputs["q"] == 1
        assert state["q"] == 0


class TestAnalysis:
    def test_topological_order_respects_dependencies(self):
        net = build_and_or()
        order = net.topological_order()
        assert order.index("ab") < order.index("y")

    def test_levels_and_depth(self):
        net = build_and_or()
        levels = net.levels()
        assert levels["a"] == 0
        assert levels["ab"] == 1
        assert levels["y"] == 2
        assert net.depth() == 2

    def test_fanouts(self):
        net = build_and_or()
        fanouts = net.fanouts()
        assert fanouts["a"] == ["ab"]
        assert fanouts["ab"] == ["y"]

    def test_stats_keys(self):
        stats = build_and_or().stats()
        assert stats == {"inputs": 3, "outputs": 1, "gates": 2, "latches": 0, "depth": 2}

    def test_cone_of_influence(self):
        net = build_and_or()
        cone = net.cone_of_influence(["ab"])
        assert cone == {"ab", "a", "b"}


class TestTransformations:
    def test_remove_dangling(self):
        net = build_and_or()
        net.add_gate("dead", GateType.AND, ["a", "c"])
        removed = net.remove_dangling()
        assert removed == 1
        assert "dead" not in net

    def test_copy_is_independent(self):
        net = build_and_or()
        dup = net.copy()
        dup.add_gate("extra", GateType.NOT, ["a"])
        assert "extra" not in net

    def test_rename_signals(self):
        net = build_and_or()
        renamed = net.rename_signals({"y": "out"})
        renamed.validate()
        assert "out" in renamed
        assert renamed.outputs == ["out"]
        assert renamed.output_vector({"a": 1, "b": 1, "c": 0}) == (1,)


class TestBuilderWordHelpers:
    def test_word_inputs_and_outputs(self):
        builder = NetworkBuilder("w")
        word = builder.word_inputs("a", 4)
        builder.word_outputs(word, "y")
        net = builder.finish()
        assert len(net.inputs) == 4
        assert len(net.outputs) == 4

    def test_constants_are_shared(self):
        builder = NetworkBuilder()
        assert builder.const(0) == builder.const(0)
        assert builder.const(1) == builder.const(1)
        assert builder.const(0) != builder.const(1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_ripple_adder_matches_integer_addition(self, a, b, cin):
        builder = NetworkBuilder("adder")
        wa = builder.word_inputs("a", 8)
        wb = builder.word_inputs("b", 8)
        ci = builder.input("cin")
        sums, cout = builder.ripple_adder(wa, wb, ci)
        builder.word_outputs(sums, "s")
        builder.output(cout, "cout")
        net = builder.finish()
        vector = {f"a[{i}]": (a >> i) & 1 for i in range(8)}
        vector.update({f"b[{i}]": (b >> i) & 1 for i in range(8)})
        vector["cin"] = cin
        outputs, _ = net.evaluate(vector)
        total = sum(outputs[f"s[{i}]"] << i for i in range(8)) + (outputs["cout"] << 8)
        assert total == a + b + cin

    def test_full_adder_truth(self):
        builder = NetworkBuilder("fa")
        a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
        s, cout = builder.full_adder(a, b, c)
        builder.output(s, "s")
        builder.output(cout, "co")
        net = builder.finish()
        for av in (0, 1):
            for bv in (0, 1):
                for cv in (0, 1):
                    outputs, _ = net.evaluate({"a": av, "b": bv, "c": cv})
                    assert outputs["s"] == (av + bv + cv) % 2
                    assert outputs["co"] == int(av + bv + cv >= 2)
