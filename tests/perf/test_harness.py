"""The benchmark harness itself: measurement, emission, comparison, CLI."""

import json

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    BenchReport,
    BenchResult,
    BenchSpec,
    SUITES,
    compare_reports,
    load_bench,
    render_comparison,
    render_results_table,
    run_spec,
    run_suite,
    suite_specs,
)


def _result(name, wall_min):
    return BenchResult(
        name=name,
        title=name,
        warmup=0,
        repeat=1,
        wall_s={"min": wall_min, "mean": wall_min, "max": wall_min},
        cpu_s={"min": wall_min, "mean": wall_min, "max": wall_min},
    )


def _rated(name, wall_min, rates):
    result = _result(name, wall_min)
    result.rates.update(rates)
    return result


class TestRunSpec:
    def test_warmup_and_repeat_counts(self):
        calls = []
        spec = BenchSpec("x", "count invocations", lambda: calls.append(1), warmup=2, repeat=3)
        result = run_spec(spec)
        assert len(calls) == 5
        assert result.warmup == 2 and result.repeat == 3
        assert result.wall_s["min"] <= result.wall_s["mean"] <= result.wall_s["max"]
        assert result.peak_rss_kb > 0

    def test_workload_counters_and_rates(self):
        spec = BenchSpec("y", "counter", lambda: {"patterns": 100}, warmup=0, repeat=1)
        result = run_spec(spec)
        assert result.counters["patterns"] == 100
        assert result.rates["patterns_per_s"] > 0
        # Harness-captured domain counters are always present.
        assert "events" in result.counters
        assert "elaborations" in result.counters

    def test_repeat_override(self):
        calls = []
        spec = BenchSpec("z", "override", lambda: calls.append(1), warmup=1, repeat=5)
        run_spec(spec, repeat=1, warmup=0)
        assert len(calls) == 1


class TestEmission:
    def test_write_load_round_trip(self, tmp_path):
        report = BenchReport(suite="smoke", results=[_result("a", 1.0)])
        path = report.write(tmp_path)
        assert path.name == "BENCH_smoke.json"
        data = json.loads(path.read_text())
        assert data["schema"] == BENCH_SCHEMA
        loaded = load_bench(path)
        assert loaded.suite == "smoke"
        assert loaded.results[0].name == "a"
        assert loaded.results[0].wall_s["min"] == 1.0

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "repro-bench/999", "results": []}))
        with pytest.raises(ValueError, match="schema"):
            load_bench(path)

    def test_render_results_table_mentions_every_bench(self):
        report = BenchReport(suite="s", results=[_result("a", 1.0), _result("b", 2.0)])
        table = render_results_table(report)
        assert "a" in table and "b" in table


class TestComparison:
    def test_regression_detection(self):
        baseline = BenchReport(suite="s", results=[_result("a", 1.0)])
        current = BenchReport(suite="s", results=[_result("a", 1.5)])
        comparison = compare_reports(current, baseline, fail_on_regress=25.0)
        assert not comparison.ok
        assert comparison.regressions[0].name == "a"
        assert comparison.deltas[0].delta_pct == pytest.approx(50.0)
        assert "REGRESS" in render_comparison(comparison)

    def test_within_threshold_is_ok(self):
        baseline = BenchReport(suite="s", results=[_result("a", 1.0)])
        current = BenchReport(suite="s", results=[_result("a", 1.2)])
        assert compare_reports(current, baseline, fail_on_regress=25.0).ok

    def test_faster_and_new_are_never_failures(self):
        baseline = BenchReport(suite="s", results=[_result("a", 1.0)])
        current = BenchReport(
            suite="s", results=[_result("a", 0.5), _result("b", 9.0)]
        )
        comparison = compare_reports(current, baseline, fail_on_regress=10.0)
        assert comparison.ok
        statuses = {d.name: d.status(10.0) for d in comparison.deltas}
        assert statuses == {"a": "faster", "b": "new"}

    def test_missing_benchmarks_are_reported(self):
        baseline = BenchReport(
            suite="s", results=[_result("a", 1.0), _result("gone", 1.0)]
        )
        current = BenchReport(suite="s", results=[_result("a", 1.0)])
        comparison = compare_reports(current, baseline)
        assert comparison.missing == ["gone"]
        assert "MISSING" in render_comparison(comparison)

    def test_new_rate_counter_is_reported_not_fatal(self):
        """A counter added after the baseline was committed shows as `new`
        instead of crashing or silently vanishing from the comparison."""
        baseline = BenchReport(suite="s", results=[_rated("a", 1.0, {"events_per_s": 100.0})])
        current = BenchReport(
            suite="s",
            results=[_rated("a", 1.0, {"events_per_s": 150.0, "patterns_per_s": 9.0})],
        )
        comparison = compare_reports(current, baseline, fail_on_regress=25.0)
        assert comparison.ok  # rates never gate
        deltas = {d.rate: d for d in comparison.rate_deltas}
        assert deltas["patterns_per_s"].status == "new"
        assert deltas["patterns_per_s"].baseline is None
        assert deltas["events_per_s"].status == "faster"
        assert deltas["events_per_s"].delta_pct == pytest.approx(50.0)
        rendered = render_comparison(comparison)
        assert "patterns_per_s" in rendered and "new" in rendered

    def test_retired_rate_counter_is_reported_gone(self):
        baseline = BenchReport(suite="s", results=[_rated("a", 1.0, {"old_per_s": 5.0})])
        current = BenchReport(suite="s", results=[_rated("a", 1.0, {})])
        comparison = compare_reports(current, baseline, fail_on_regress=25.0)
        assert comparison.ok
        deltas = {d.rate: d for d in comparison.rate_deltas}
        assert deltas["old_per_s"].status == "gone"
        assert deltas["old_per_s"].current is None

    def test_rateless_reports_render_without_rate_table(self):
        baseline = BenchReport(suite="s", results=[_result("a", 1.0)])
        current = BenchReport(suite="s", results=[_result("a", 1.0)])
        comparison = compare_reports(current, baseline)
        assert comparison.rate_deltas == []
        assert "Throughput rates" not in render_comparison(comparison)


class TestSuites:
    def test_known_suites_resolve(self):
        for name in SUITES:
            specs = suite_specs(name)
            assert specs and all(spec.name for spec in specs)

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown bench suite"):
            suite_specs("nope")

    def test_run_suite_aggregates(self):
        specs = [
            BenchSpec("one", "t", lambda: None, warmup=0, repeat=1),
            BenchSpec("two", "t", lambda: None, warmup=0, repeat=1),
        ]
        report = run_suite("tiny", specs)
        assert [r.name for r in report.results] == ["one", "two"]
        assert report.elapsed_s > 0


class TestBenchCli:
    def test_parse_and_run_smoke_suite(self, tmp_path, capsys):
        """`repro bench --suite smoke` end to end (single fast repeat)."""
        from repro.eval.cli import main

        code = main([
            "bench", "--suite", "smoke", "--repeat", "1", "--warmup", "0",
            "--out", str(tmp_path), "-q",
        ])
        assert code == 0
        emitted = tmp_path / "BENCH_smoke.json"
        assert emitted.exists()
        data = json.loads(emitted.read_text())
        assert data["schema"] == BENCH_SCHEMA
        assert {r["name"] for r in data["results"]} == set(SUITES["smoke"])
        out = capsys.readouterr().out
        assert "BENCH_smoke.json" in out

    def test_compare_gate_fails_on_regression(self, tmp_path, capsys):
        from repro.eval.cli import main

        # Fabricate an absurdly fast baseline: the real run must regress.
        baseline = BenchReport(
            suite="smoke",
            results=[_result(name, 1e-9) for name in SUITES["smoke"]],
        )
        baseline_path = baseline.write(tmp_path / "base")
        code = main([
            "bench", "--suite", "smoke", "--repeat", "1", "--warmup", "0",
            "--out", str(tmp_path), "-q",
            "--compare", str(baseline_path), "--fail-on-regress", "25",
        ])
        assert code == 1
        assert "FAILED regression gate" in capsys.readouterr().out

    def test_compare_gate_fails_on_missing_baseline_entries(self, tmp_path, capsys):
        """A baselined benchmark the run never exercised must not pass green."""
        from repro.eval.cli import main

        baseline = BenchReport(
            suite="smoke",
            results=[_result(name, 1e9) for name in SUITES["smoke"]]
            + [_result("retired-benchmark", 1.0)],
        )
        baseline_path = baseline.write(tmp_path / "base")
        code = main([
            "bench", "--suite", "smoke", "--repeat", "1", "--warmup", "0",
            "--out", str(tmp_path), "-q",
            "--compare", str(baseline_path), "--fail-on-regress", "25",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "retired-benchmark" in out
        assert "baseline entries missing" in out

    def test_fail_on_regress_requires_compare(self):
        from repro.eval.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "--suite", "smoke", "--fail-on-regress", "25"])
