"""Differential micro-benchmarks: optimized kernels vs reference implementations.

The PR that introduced ``repro.perf`` also rewrote the two innermost
simulation loops (the pulse-event core and the word-parallel AIG walk).
These tests pin the rewrites to the original implementations on every
``repro.gen`` circuit family: identical pulse traces, identical packed
words — no averaging, no tolerance.
"""

import pytest

from repro.aig import network_to_aig
from repro.aig.simulate import (
    simulate_patterns,
    simulate_patterns_reference,
    simulate_random,
)
from repro.core import Flow, FlowOptions
from repro.gen import FAMILIES, generate_specs
from repro.sim.pulse import (
    BatchedNetlistSimulator,
    ReferencePulseSimulator,
    build_simulator,
)
from repro.verify import stimulus_suite

#: A handful of generated circuits per family, all families covered.
FAMILY_SPECS = [
    spec
    for family in sorted(FAMILIES)
    for spec in generate_specs(3, seed=7, families=[family])
]


def _rebuild_elements(netlist):
    """Fresh pulse elements for each simulator (elements carry state)."""
    simulator, _ = build_simulator(netlist)
    return simulator.elements


@pytest.fixture(scope="module")
def synthesized():
    flow = Flow.from_options(FlowOptions(effort="low"))
    return {spec.name(): flow.run(spec.build()) for spec in FAMILY_SPECS}


@pytest.mark.parametrize("spec", FAMILY_SPECS, ids=lambda s: s.name())
def test_pulse_simulator_matches_reference_on_family(spec, synthesized):
    """Optimized and reference event cores produce identical traces."""
    result = synthesized[spec.name()]
    netlist = result.netlist

    fast = BatchedNetlistSimulator(netlist, full_trace=True)
    reference = ReferencePulseSimulator()
    reference.add_elements(_rebuild_elements(netlist))

    suite = stimulus_suite(
        sorted({p.rsplit("_", 1)[0] for p in netlist.input_ports
                if p not in netlist.clock_nets and p not in netlist.trigger_nets}),
        num_patterns=8,
        seed=3,
        allow_exhaustive=not fast.is_sequential,
    )
    if fast.is_sequential:
        vectors = [dict(zip(suite.inputs, row)) for row in list(suite.sequences(4))[0]]
        run = fast.run_sequence(vectors)
    else:
        vectors = suite.as_dicts()
        run = fast.run_combinational(vectors)

    # Replay the exact same raw stimulus through the reference core.  The
    # batched simulator owns stimulus construction, so drive the reference
    # with the optimized simulator's own input events: every input rail
    # pulse is observable in the full trace (input rails have no drivers).
    driven = {net for cell in netlist.cells for net in cell.outputs}
    raw_stimulus = {
        net: times for net, times in run.trace.items() if net not in driven
    }
    reference_trace = reference.run(raw_stimulus)

    assert reference_trace == run.trace
    assert reference.dangling_nets() == fast.simulator.dangling_nets()
    assert (
        reference.elements_in_initial_state()
        == fast.simulator.elements_in_initial_state()
    )


@pytest.mark.parametrize("spec", FAMILY_SPECS, ids=lambda s: s.name())
def test_simulate_patterns_matches_reference_on_family(spec):
    """Array-walk AIG simulation returns word-identical values."""
    aig = network_to_aig(spec.build())
    import random

    rng = random.Random(11)
    num_patterns = 64
    patterns = {
        node: rng.getrandbits(num_patterns)
        for node in list(aig.pi_nodes) + [l.node for l in aig.latches]
    }
    fast = simulate_patterns(aig, patterns, num_patterns)
    slow = simulate_patterns_reference(aig, patterns, num_patterns)
    assert fast == slow


@pytest.mark.parametrize("spec", FAMILY_SPECS[:3], ids=lambda s: s.name())
def test_simulate_random_is_reference_identical(spec):
    """The convenience wrapper inherits kernel equivalence."""
    aig = network_to_aig(spec.build())
    values = simulate_random(aig, num_patterns=32, seed=5)
    assert values == simulate_patterns_reference(
        aig,
        {
            node: values[node]
            for node in list(aig.pi_nodes) + [l.node for l in aig.latches]
        },
        32,
    )
