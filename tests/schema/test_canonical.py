"""The canonical serialiser: wire-safety, determinism, content keys."""

import json
import math
from decimal import Decimal
from pathlib import Path

import pytest

from repro.schema import (
    SchemaError,
    WireFormatError,
    canonical_json,
    content_key,
    ensure_wire_safe,
)


class TestEnsureWireSafe:
    def test_accepts_json_native_values(self):
        doc = {
            "s": "text",
            "i": 42,
            "f": 1.5,
            "b": True,
            "n": None,
            "list": [1, "two", [3.0, False]],
            "tuple": (1, (2, 3)),
            "nested": {"inner": {"deep": []}},
        }
        assert ensure_wire_safe(doc) is doc

    @pytest.mark.parametrize(
        "value",
        [
            object(),
            Decimal("1"),
            Path("/tmp/x"),
            {1, 2},
            b"bytes",
            complex(1, 2),
        ],
    )
    def test_rejects_non_native_values(self, value):
        with pytest.raises(WireFormatError):
            ensure_wire_safe({"field": value})

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite_floats(self, value):
        with pytest.raises(WireFormatError, match="wire-safe"):
            ensure_wire_safe({"rate": value})

    def test_rejects_non_string_mapping_keys(self):
        with pytest.raises(WireFormatError, match="key"):
            ensure_wire_safe({1: "one"})

    def test_error_names_the_offending_path(self):
        with pytest.raises(WireFormatError, match=r"\$\.outer\[1\]\.bad"):
            ensure_wire_safe({"outer": [{}, {"bad": object()}]})

    def test_schema_error_is_a_value_error(self):
        assert issubclass(WireFormatError, SchemaError)
        assert issubclass(SchemaError, ValueError)


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_tuples_serialise_as_arrays(self):
        assert canonical_json((1, ("x", 2))) == '[1,["x",2]]'

    def test_round_trips_through_json_loads(self):
        doc = {"flow": [["frontend", {}]], "patterns": 64, "rate": 0.25}
        assert json.loads(canonical_json(doc)) == doc

    def test_no_default_str_escape_hatch(self):
        """Regression (satellite 1): ``default=str`` used to stringify
        arbitrary objects into the key payload.  Two distinct values whose
        ``str()`` agree — ``Decimal("1")`` and ``"1"`` — then collided, and
        an ``object()`` (whose ``str()`` embeds its memory address) changed
        the key every process.  Both now raise instead."""
        assert canonical_json({"v": "1"}) == '{"v":"1"}'
        with pytest.raises(WireFormatError):
            canonical_json({"v": Decimal("1")})
        with pytest.raises(WireFormatError):
            canonical_json({"v": object()})

    def test_bool_and_int_stay_distinct(self):
        assert canonical_json({"v": True}) != canonical_json({"v": 1})


class TestContentKey:
    def test_stable_and_order_insensitive(self):
        a = content_key({"x": 1, "y": [1, 2]})
        b = content_key({"y": [1, 2], "x": 1})
        assert a == b and len(a) == 64 and int(a, 16) >= 0

    def test_distinct_payloads_distinct_keys(self):
        assert content_key({"x": 1}) != content_key({"x": 2})
        assert content_key({"x": 1}) != content_key({"x": "1"})

    def test_math_nan_in_nested_payload_raises(self):
        with pytest.raises(WireFormatError):
            content_key({"deep": [{"rate": math.nan}]})
