"""Schema evolution of every document family.

Two walls per family: (1) a freshly produced document round-trips
through ``pack``/``load_document`` unchanged, and (2) the pinned
legacy/v1 fixture in ``tests/schema/fixtures`` loads through its
migration path into the current shape.  The fixtures are committed
bytes — they are the wire-compatibility contract with every document
already on disk in caches, baselines and checkpoints.
"""

import json
from pathlib import Path

import pytest

from repro.schema import load_document, message_type, pack, schema_tag

FIXTURES = Path(__file__).parent / "fixtures"


def fixture(name):
    return json.loads((FIXTURES / name).read_text(encoding="utf-8"))


class TestLegacyFixturesMigrate:
    def test_record_v2_untagged_loads(self):
        payload = load_document(fixture("record-v2.json"), "record")
        assert payload["circuit"] == "ctrl"
        assert payload["flow"][0] == ["frontend", {}]
        assert "schema" not in payload

    def test_verify_v2_untagged_loads(self):
        payload = load_document(fixture("verify-v2.json"), "verify")
        assert payload["status"] == "equivalent"
        assert payload["cell_counts"]["LA"] == 40

    def test_fault_v1_untagged_loads(self):
        payload = load_document(fixture("fault-v1.json"), "fault")
        assert payload["fault_kind"] == "jitter"
        assert payload["injections"]["jitter"] == 217

    def test_bench_v1_loads_through_load_bench(self, tmp_path):
        from repro.perf import load_bench

        path = tmp_path / "BENCH_fixture.json"
        path.write_text(json.dumps(fixture("bench-v1.json")))
        report = load_bench(path)
        assert report.suite == "smoke"
        assert report.results[0].counters["patterns"] == 416.0

    def test_cov_v1_loads_through_coverage_map(self):
        from repro.cov import CoverageMap

        cov = CoverageMap.from_dict(fixture("cov-v1.json"))
        assert cov.count("alpha:and:3-4:d5-8") == 2
        assert cov.to_dict() == fixture("cov-v1.json")

    def test_soak_v1_loads_through_soak_state(self):
        from repro.cov import SoakState

        state = SoakState.from_dict(fixture("soak-v1.json"))
        assert state.units_done == 2 and not state.complete
        assert state.to_dict() == fixture("soak-v1.json")

    def test_faults_report_v1_loads_through_load_fault_report(self, tmp_path):
        from repro.faults import load_fault_report

        path = tmp_path / "repro-faults.json"
        path.write_text(json.dumps(fixture("faults-report-v1.json")))
        payload = load_fault_report(path)
        assert payload["summary"]["all_nominal_equivalent"] is True
        assert payload["rows"][0]["fault_kind"] == "jitter"

    def test_corpus_v1_untagged_loads(self):
        payload = load_document(fixture("corpus-v1.json"), "corpus")
        assert payload["family"] == "dag" and payload["seed"] == 7


class TestRoundTrips:
    """``load_document(pack(kind, payload), kind) == payload`` for real
    payloads of every family (the legacy fixtures double as payload
    sources — after migration they *are* current-version payloads)."""

    @pytest.mark.parametrize(
        "kind, name",
        [
            ("record", "record-v2.json"),
            ("verify", "verify-v2.json"),
            ("fault", "fault-v1.json"),
            ("bench", "bench-v1.json"),
            ("cov", "cov-v1.json"),
            ("soak", "soak-v1.json"),
            ("faults", "faults-report-v1.json"),
            ("corpus", "corpus-v1.json"),
        ],
    )
    def test_pack_load_round_trip(self, kind, name):
        payload = load_document(fixture(name), kind)
        document = pack(kind, payload)
        assert document["schema"] == schema_tag(kind)
        assert load_document(document, kind) == payload

    def test_fresh_coverage_map_round_trips(self):
        from repro.cov import CoverageMap

        cov = CoverageMap()
        cov.add(["depth:1", "alpha:xor:2:d1"], "unitaaa")
        cov.add(["depth:1"], "unitbbb")
        assert CoverageMap.from_json(cov.canonical_json()) == cov

    def test_fresh_bench_report_round_trips(self, tmp_path):
        from repro.perf import BenchReport, BenchResult, load_bench

        report = BenchReport(
            suite="rt",
            results=[
                BenchResult(
                    name="a",
                    title="a",
                    warmup=0,
                    repeat=1,
                    wall_s={"min": 1.0, "mean": 1.0, "max": 1.0},
                    cpu_s={"min": 1.0, "mean": 1.0, "max": 1.0},
                )
            ],
        )
        loaded = load_bench(report.write(tmp_path))
        assert loaded.to_dict() == report.to_dict()


class TestCacheEnvelope:
    """The shared ResultCache stamps/strips the envelope per spec kind."""

    def _flow_signature(self):
        from repro.core import Flow, FlowOptions

        return Flow.from_options(FlowOptions(effort="none")).signature()

    def test_record_payload_round_trips_through_the_cache(self, tmp_path):
        from repro.eval.engine import ResultCache, SynthesisJob

        job = SynthesisJob(circuit="ctrl", stages=self._flow_signature())
        record = load_document(fixture("record-v2.json"), "record")
        cache = ResultCache(tmp_path)
        cache.put(job, record)
        on_disk = json.loads(cache._path(job.key()).read_text())
        assert on_disk["schema"] == schema_tag("record")
        assert cache.get(job) == record

    def test_verify_and_fault_specs_use_their_own_kinds(self, tmp_path):
        from repro.eval.engine import ResultCache
        from repro.faults.campaign import FaultSpec
        from repro.verify.campaign import VerificationSpec

        signature = self._flow_signature()
        cases = [
            (
                VerificationSpec(circuit="ctrl", stages=signature),
                "verify-v2.json",
                "verify",
            ),
            (
                FaultSpec(
                    circuit="ctrl",
                    scenario="fault:jitter:mag=2.0:s0",
                    stages=signature,
                ),
                "fault-v1.json",
                "fault",
            ),
        ]
        cache = ResultCache(tmp_path)
        for spec, name, kind in cases:
            assert spec.schema_kind == kind
            record = load_document(fixture(name), kind)
            cache.put(spec, record)
            on_disk = json.loads(cache._path(spec.key()).read_text())
            assert on_disk["schema"] == schema_tag(kind)
            assert cache.get(spec) == record

    def test_pre_envelope_cache_record_still_loads(self, tmp_path):
        """An untagged (v2) record already sitting in a cache directory
        must keep replaying: it sniffs as the legacy version and migrates."""
        from repro.eval.engine import ResultCache, SynthesisJob

        job = SynthesisJob(circuit="ctrl", stages=self._flow_signature())
        record = load_document(fixture("record-v2.json"), "record")
        cache = ResultCache(tmp_path)
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache._path(job.key()).write_text(json.dumps(record, sort_keys=True))
        assert cache.get(job) == record
        assert cache.hits == 1 and cache.misses == 0

    def test_versions_are_part_of_the_cache_key(self):
        from repro.eval.engine import SynthesisJob

        job = SynthesisJob(circuit="ctrl", stages=self._flow_signature())
        assert message_type("record").tag == "repro-record/3"
        # Keys embed the full tag, so a version bump re-keys the cache.
        assert job.key() != ""
