"""Cross-process determinism of the canonical serialiser.

The same payload is serialised and content-keyed in two interpreters
with *different* ``PYTHONHASHSEED`` values.  ``canonical_json`` and
``content_key`` must come back byte-identical: cache keys, coverage
corpus JSON and byte-stability baselines all assume the serialisation
is a pure function of the value, never of Python's randomised string
hash or of dict insertion order.
"""

import os
import subprocess
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_SNIPPET = """
from repro.schema import canonical_json, content_key, pack

payload = {
    "circuit": "ctrl",
    "scale": "quick",
    "flow": [["frontend", {"opt_rounds": 2}], ["map", {}]],
    "metrics": {"jj": 1184, "depth": 17, "rate": 0.125},
    "flags": [True, False, None],
}
# Build an insertion-order-scrambled copy; canonical output must agree.
scrambled = {key: payload[key] for key in sorted(payload, reverse=True)}

print(canonical_json(payload))
print(content_key(payload))
print(content_key(scrambled))
print(canonical_json(pack("cov", {"features": {"depth:1": ["unitaaa"]}})))

from repro.eval.engine import SynthesisJob

job = SynthesisJob.create("ctrl", options={"effort": "none"})
print(job.key())
"""


def _run(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


def test_two_subprocesses_agree_bit_for_bit():
    first = _run(hash_seed="1")
    second = _run(hash_seed="2")
    assert first == second
    lines = first.splitlines()
    assert lines[0].startswith('{"circuit":"ctrl",')  # sorted, compact
    assert lines[1] == lines[2]  # insertion order cannot leak into the key
    assert len(lines[1]) == 64 and len(lines[4]) == 64
    assert lines[3].startswith('{"features":')  # envelope tag sorts after
