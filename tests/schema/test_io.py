"""Durable IO: atomic writes and corrupt-file quarantine."""

import json
import os

import pytest

from repro.schema import WireFormatError, atomic_write_json, quarantine


class TestAtomicWriteJson:
    def test_writes_pretty_sorted_with_trailing_newline(self, tmp_path):
        path = atomic_write_json(tmp_path / "doc.json", {"b": 1, "a": 2})
        text = path.read_text()
        assert text == '{\n  "a": 2,\n  "b": 1\n}\n'

    def test_compact_form_matches_canonical_serialisation(self, tmp_path):
        path = atomic_write_json(
            tmp_path / "doc.json", {"b": 1, "a": [1, 2]}, compact=True
        )
        assert path.read_text() == '{"a":[1,2],"b":1}\n'

    def test_creates_parent_directories(self, tmp_path):
        path = atomic_write_json(tmp_path / "deep" / "nest" / "doc.json", {"a": 1})
        assert path.exists()

    def test_replaces_existing_document(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"version": 1})
        atomic_write_json(target, {"version": 2})
        assert json.loads(target.read_text()) == {"version": 2}

    def test_rejecting_a_bad_document_leaves_the_old_bytes_intact(self, tmp_path):
        """A failed write must not touch the previous document or leave
        temp litter — this is the crash-safety contract every baseline
        and checkpoint depends on."""
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"good": True})
        before = target.read_bytes()
        with pytest.raises(WireFormatError):
            atomic_write_json(target, {"bad": object()})
        with pytest.raises(WireFormatError):
            atomic_write_json(target, {"bad": float("nan")})
        assert target.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_interrupted_replace_leaves_no_partial_target(self, tmp_path, monkeypatch):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"version": 1})
        before = target.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_json(target, {"version": 2})
        monkeypatch.undo()
        assert target.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]


class TestQuarantine:
    def test_moves_the_file_aside(self, tmp_path):
        bad = tmp_path / "record.json"
        bad.write_text("{trunca")
        moved = quarantine(bad)
        assert moved == tmp_path / "record.json.corrupt"
        assert not bad.exists() and moved.read_text() == "{trunca"

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine(tmp_path / "never-existed.json") is None
