"""The message registry: envelopes, validation, versioning, migration."""

import pytest

from repro.schema import (
    MessageType,
    SchemaError,
    TAG_KEY,
    load_document,
    message_type,
    pack,
    parse_tag,
    register,
    registered_kinds,
    schema_tag,
)


class TestTags:
    def test_every_document_family_is_registered(self):
        assert set(registered_kinds()) >= {
            "record",
            "verify",
            "fault",
            "bench",
            "cov",
            "soak",
            "faults",
            "corpus",
        }

    def test_module_constants_agree_with_the_registry(self):
        """The per-module ``*_SCHEMA`` constants are views of the registry."""
        from repro.cov import COV_SCHEMA, SOAK_SCHEMA
        from repro.eval.engine import RECORD_SCHEMA
        from repro.faults.campaign import FAULT_RECORD_SCHEMA, FAULTS_SCHEMA
        from repro.perf import BENCH_SCHEMA
        from repro.verify.campaign import VERIFY_SCHEMA

        assert RECORD_SCHEMA == message_type("record").version
        assert VERIFY_SCHEMA == message_type("verify").version
        assert FAULT_RECORD_SCHEMA == message_type("fault").version
        assert FAULTS_SCHEMA == schema_tag("faults")
        assert BENCH_SCHEMA == schema_tag("bench")
        assert COV_SCHEMA == schema_tag("cov")
        assert SOAK_SCHEMA == schema_tag("soak")

    def test_parse_tag_round_trip(self):
        for kind in registered_kinds():
            tag = schema_tag(kind)
            assert parse_tag(tag) == (kind, message_type(kind).version)

    @pytest.mark.parametrize(
        "tag", ["bench/1", "repro-bench", "repro-bench/v1", "repro-Bench/1", 7, None]
    )
    def test_parse_tag_rejects_malformed(self, tag):
        with pytest.raises(SchemaError, match="schema"):
            parse_tag(tag)

    def test_unknown_kind_raises(self):
        with pytest.raises(SchemaError, match="unknown schema kind"):
            message_type("nope")

    def test_duplicate_registration_raises(self):
        with pytest.raises(SchemaError, match="already registered"):
            register(MessageType(kind="bench", version=9))


class TestPack:
    def test_pack_stamps_the_current_tag(self):
        doc = pack("cov", {"features": {}})
        assert doc[TAG_KEY] == "repro-cov/1"
        assert doc["features"] == {}

    def test_pack_rejects_payloads_carrying_a_tag(self):
        with pytest.raises(SchemaError, match="reserved"):
            pack("cov", {"features": {}, "schema": "repro-cov/1"})

    def test_pack_rejects_missing_required_fields(self):
        with pytest.raises(SchemaError, match="missing required field 'features'"):
            pack("cov", {})

    def test_pack_rejects_non_wire_safe_payloads(self):
        with pytest.raises(SchemaError):
            pack("cov", {"features": {}, "junk": object()})

    def test_pack_rejects_wrongly_typed_fields(self):
        with pytest.raises(SchemaError, match="expects"):
            pack("cov", {"features": ["not", "a", "mapping"]})

    def test_bool_does_not_satisfy_an_int_field(self):
        with pytest.raises(SchemaError, match="bool"):
            pack(
                "soak",
                {
                    "campaign": {},
                    "units_total": True,
                    "units_done": 0,
                    "batches": [],
                    "records": [],
                    "coverage": {},
                },
            )


class TestLoad:
    def test_load_strips_the_tag(self):
        payload = {"features": {"f": ["u"]}}
        assert load_document(pack("cov", payload), "cov") == payload

    def test_foreign_kind_is_rejected(self):
        with pytest.raises(SchemaError, match="schema"):
            load_document(pack("cov", {"features": {}}), "bench")

    def test_unknown_future_version_is_rejected(self):
        with pytest.raises(SchemaError, match="schema"):
            load_document({"schema": "repro-cov/999", "features": {}}, "cov")

    def test_untagged_document_without_legacy_version_is_rejected(self):
        with pytest.raises(SchemaError, match="no schema tag"):
            load_document({"suite": "smoke", "results": []}, "bench")

    def test_non_mapping_document_is_rejected(self):
        with pytest.raises(SchemaError, match="mapping"):
            load_document(["not", "a", "document"], "cov")

    def test_source_names_the_file_in_the_error(self):
        with pytest.raises(SchemaError, match="some/path.json"):
            load_document({"schema": "repro-cov/999"}, "cov", source="some/path.json")


class TestMigrationChain:
    """Non-trivial multi-hop migration, exercised on a test-local kind."""

    @pytest.fixture(scope="class")
    def chained(self):
        # v1 used "name"; v2 renamed it to "title"; v3 added "count".
        return register(
            MessageType(
                kind="testchain",
                version=3,
                required=(("title", (str,)), ("count", (int,))),
                legacy_version=1,
                migrations={
                    1: lambda p: {"title": p.pop("name", ""), **p},
                    2: lambda p: {"count": 0, **p},
                },
            )
        )

    def test_v1_migrates_through_every_hop(self, chained):
        loaded = load_document({"name": "old", "extra": 7}, "testchain")
        assert loaded == {"title": "old", "extra": 7, "count": 0}

    def test_v2_enters_the_chain_midway(self, chained):
        loaded = load_document({"schema": "repro-testchain/2", "title": "t"}, "testchain")
        assert loaded == {"title": "t", "count": 0}

    def test_current_version_skips_migration(self, chained):
        payload = {"title": "t", "count": 3}
        assert load_document(pack("testchain", payload), "testchain") == payload

    def test_migrated_payload_is_still_validated(self, chained):
        # v2 -> v3 adds "count" but nothing supplies "title": invalid.
        with pytest.raises(SchemaError, match="title"):
            load_document({"schema": "repro-testchain/2"}, "testchain")
