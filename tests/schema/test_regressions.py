"""Regression tests for the three serialization bugs this layer fixed.

1. Cache-key canonicalisation silently stringified non-JSON-native
   values (``json.dumps(..., default=str)``), so two distinct option
   values with equal ``str()`` collided and an ``object()`` re-keyed on
   every process.  Keys now refuse non-wire-safe payloads.
2. A truncated/corrupt record in :class:`~repro.eval.engine.ResultCache`
   crashed wherever it surfaced (or was silently swallowed); it is now a
   miss — the unit recomputes — with the bad file quarantined and a
   warning logged.
3. ``BenchReport.write`` re-wrote reports in place with a plain
   ``open``/``json.dump``, so a crash mid-write truncated the baseline
   the CI regression gate reads.  Writes are now atomic.
"""

import logging

import pytest

from repro.core import Flow, FlowOptions
from repro.schema import WireFormatError


def tiny_signature():
    return Flow.from_options(FlowOptions(effort="none")).signature()


def poisoned_signature():
    """A flow signature smuggling a non-JSON-native option value."""
    return (("frontend", (("opt_rounds", object()),)),)


class TestKeyCanonicalisation:
    """Satellite 1: ``default=str`` removed from every key path."""

    def test_synthesis_job_key_rejects_non_native_option_values(self):
        from repro.eval.engine import SynthesisJob

        job = SynthesisJob(circuit="ctrl", stages=poisoned_signature())
        with pytest.raises(WireFormatError, match="flow"):
            job.key()

    def test_verification_spec_key_rejects_non_native_option_values(self):
        from repro.verify.campaign import VerificationSpec

        spec = VerificationSpec(circuit="ctrl", stages=poisoned_signature())
        with pytest.raises(WireFormatError, match="flow"):
            spec.key()

    def test_fault_spec_key_rejects_non_native_option_values(self):
        from repro.faults.campaign import FaultSpec

        spec = FaultSpec(
            circuit="ctrl",
            scenario="fault:jitter:mag=2.0:s0",
            stages=poisoned_signature(),
        )
        with pytest.raises(WireFormatError, match="flow"):
            spec.key()

    def test_str_collisions_are_impossible_by_construction(self):
        """The old bug: ``str(Decimal("2"))`` == ``str("2")`` == ``"2"``,
        so ``default=str`` keyed both jobs identically and one replayed
        the other's record.  The raise above makes the collision class
        unrepresentable — and native values still key distinctly."""
        from repro.eval.engine import SynthesisJob

        a = SynthesisJob(circuit="ctrl", stages=(("frontend", (("k", "2"),)),))
        b = SynthesisJob(circuit="ctrl", stages=(("frontend", (("k", 2),)),))
        assert a.key() != b.key()

    def test_keys_are_stable_across_calls(self):
        from repro.eval.engine import SynthesisJob

        job = SynthesisJob(circuit="ctrl", stages=tiny_signature())
        assert job.key() == job.key()


class TestCorruptCacheRecovery:
    """Satellite 2: corrupt record ⇒ miss + quarantine + warning."""

    def _job(self):
        from repro.eval.engine import SynthesisJob

        return SynthesisJob(circuit="ctrl", stages=tiny_signature())

    def _cache_with_garbage(self, tmp_path, body):
        from repro.eval.engine import ResultCache

        cache = ResultCache(tmp_path)
        job = self._job()
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache._path(job.key()).write_text(body)
        return cache, job

    @pytest.mark.parametrize(
        "body",
        [
            '{"circuit": "ctrl", "sca',  # truncated mid-write
            "",  # zero bytes (crash before flush)
            "not json at all",
            '{"schema": "repro-record/3"}',  # parses, fails validation
            '{"schema": "repro-bench/1", "suite": "x", "results": []}',  # foreign
        ],
    )
    def test_corrupt_record_is_a_miss_not_a_crash(self, tmp_path, body, caplog):
        cache, job = self._cache_with_garbage(tmp_path, body)
        with caplog.at_level(logging.WARNING, logger="repro.eval.engine"):
            assert cache.get(job) is None
        assert cache.misses == 1 and cache.hits == 0
        assert any("treated as a miss" in rec.message for rec in caplog.records)

    def test_corrupt_record_is_quarantined_for_inspection(self, tmp_path):
        cache, job = self._cache_with_garbage(tmp_path, "{truncated")
        cache.get(job)
        path = cache._path(job.key())
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_text() == "{truncated"
        # Quarantined files are invisible to the cache's own bookkeeping.
        assert len(cache) == 0 and cache.clear() == 0
        assert quarantined.exists()

    def test_recompute_overwrites_the_quarantined_slot(self, tmp_path):
        cache, job = self._cache_with_garbage(tmp_path, "junk")
        assert cache.get(job) is None
        record = {
            "circuit": job.circuit,
            "scale": job.scale,
            "flow": [list(entry) for entry in job.to_dict()["flow"]],
            "jj": 123,
        }
        cache.put(job, record)
        assert cache.get(job) == record
        assert cache.stats() == {"hits": 1, "misses": 1, "puts": 1}

    def test_missing_record_is_a_plain_miss_without_warnings(self, tmp_path, caplog):
        from repro.eval.engine import ResultCache

        cache = ResultCache(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.eval.engine"):
            assert cache.get(self._job()) is None
        assert cache.misses == 1
        assert not caplog.records
        assert not list(tmp_path.glob("*.corrupt"))


class TestAtomicBenchWrites:
    """Satellite 3: a failed report write cannot truncate the baseline."""

    def _report(self, wall_min=1.0):
        from repro.perf import BenchReport, BenchResult

        return BenchReport(
            suite="smoke",
            results=[
                BenchResult(
                    name="b",
                    title="b",
                    warmup=0,
                    repeat=1,
                    wall_s={"min": wall_min, "mean": wall_min, "max": wall_min},
                    cpu_s={"min": 0.5, "mean": 0.5, "max": 0.5},
                )
            ],
        )

    def test_write_is_atomic_and_loadable(self, tmp_path):
        from repro.perf import load_bench

        path = self._report().write(tmp_path)
        assert path.name == "BENCH_smoke.json"
        assert load_bench(path).results[0].wall_s["min"] == 1.0
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_smoke.json"]

    def test_failed_rewrite_leaves_the_baseline_intact(self, tmp_path):
        """The pre-fix behaviour: ``open(path, "w")`` truncates *before*
        ``json.dump`` runs, so any serialisation failure destroyed the
        previous report.  Now the baseline survives byte-for-byte."""
        baseline = self._report().write(tmp_path)
        before = baseline.read_bytes()
        with pytest.raises(WireFormatError):
            self._report(wall_min=float("nan")).write(tmp_path)
        assert baseline.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_smoke.json"]
