"""Wire compatibility with every JSON artefact committed to the repo.

The schema layer's one hard promise is that nothing already on disk
stops loading: the benchmark baseline the CI regression gate reads, the
pinned generator-corpus entries the coverage fuzzer seeds from, and the
legacy fixtures in ``tests/schema/fixtures``.  This is also the test
file the ``schema-compat`` CI job runs against a fresh checkout.
"""

import json
from pathlib import Path

import pytest

from repro.schema import load_document, registered_kinds

REPO = Path(__file__).resolve().parents[2]
CORPUS = sorted((REPO / "tests" / "gen" / "corpus").glob("*.json"))
FIXTURES = sorted((Path(__file__).parent / "fixtures").glob("*.json"))


def test_committed_bench_baseline_loads():
    from repro.perf import load_bench

    report = load_bench(REPO / "benchmarks" / "baselines" / "BENCH_smoke.json")
    assert report.suite == "smoke"
    assert report.results, "baseline unexpectedly empty"
    assert all(result.name for result in report.results)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_committed_corpus_entries_load(path):
    payload = load_document(json.loads(path.read_text()), "corpus", source=str(path))
    assert payload["family"] in {"dag", "fsm", "arith"}
    assert isinstance(payload["seed"], int)


def test_committed_corpus_entries_still_build_specs():
    from repro.cov.features import load_corpus_specs

    entries = load_corpus_specs(REPO / "tests" / "gen" / "corpus")
    assert len(entries) == len(CORPUS), "corpus entry failed schema validation"
    assert all(spec.family in {"dag", "fsm", "arith"} for _, spec in entries)


def test_corpus_directory_is_not_empty():
    assert len(CORPUS) >= 6


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_pinned_fixtures_load_through_their_kind(path):
    kind = path.stem.rsplit("-", 1)[0].replace("faults-report", "faults")
    assert kind in registered_kinds()
    payload = load_document(json.loads(path.read_text()), kind, source=str(path))
    assert payload and "schema" not in payload


def test_every_kind_has_a_pinned_fixture():
    covered = {p.stem.rsplit("-", 1)[0].replace("faults-report", "faults") for p in FIXTURES}
    assert covered == set(registered_kinds()) - {"testchain"}
