"""Differential wall for the struct-of-arrays pulse fast path.

Pins vectorized :class:`PulseSimulator` runs bit-identical to the scalar
event loop and to :class:`ReferencePulseSimulator` across every
``repro.gen`` family x flow variant, under all four fault kinds at
nonzero magnitude (which must fall back to the scalar core), across
reset/replay and split-``until`` resume seams, with ``observe_only``
capture restriction, dangling-net recording, zero-pattern batches, and
PYTHONHASHSEED-varied subprocess byte-identity of traces.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import flow_variant, flow_variant_names
from repro.faults import FaultModel
from repro.gen import FAMILIES, generate_specs
from repro.sim.pulse import (
    BatchedNetlistSimulator,
    PulseSimulator,
    ReferencePulseSimulator,
    build_simulator,
)
from repro.sim.pulse.elements import LaCell, FaCell, MergerCell, SourceCell, SplitterCell
from repro.sim.pulse.xsfq_sim import _constant_nets, _drive_constants, _drive_input
from repro.verify import stimulus_suite

REPO_ROOT = Path(__file__).resolve().parents[2]

# The suite also runs in CI with REPRO_SCALAR_KERNELS=1 to prove the
# scalar fallback stays healthy; fast-path-taken assertions scale by this.
_EXPECTED_VEC = 0 if os.environ.get("REPRO_SCALAR_KERNELS", "") == "1" else 1

FAMILY_SPECS = {
    family: generate_specs(1, seed=13, families=[family])[0]
    for family in sorted(FAMILIES)
}
# Other test modules register throwaway "test-*" variants at import time
# (e.g. tests/gen/test_fuzz.py's fault-injected flow); skip those.
VARIANTS = [v for v in flow_variant_names() if not v.startswith("test-")]
UNITS = [(family, variant) for family in sorted(FAMILY_SPECS) for variant in VARIANTS]


@pytest.fixture(scope="module")
def synthesized():
    """One synthesis per family x flow variant, shared by the tests."""
    results = {}
    for family, spec in FAMILY_SPECS.items():
        for variant in VARIANTS:
            results[(family, variant)] = flow_variant(variant).run(spec.build())
    return results


def _drive(netlist, vectorize, num_patterns=12, fault_model=None, full_trace=True):
    sim = BatchedNetlistSimulator(
        netlist, full_trace=full_trace, vectorize=vectorize, fault_model=fault_model
    )
    suite = stimulus_suite(
        sim.pi_names,
        num_patterns=num_patterns,
        seed=4,
        allow_exhaustive=not sim.is_sequential,
    )
    if sim.is_sequential:
        vectors = [dict(zip(suite.inputs, row)) for row in next(suite.sequences(5))]
        run = sim.run_sequence(vectors)
    else:
        run = sim.run_combinational(suite.as_dicts())
    return sim, run


def _assert_identical(vec_pair, scalar_pair):
    vec_sim, vec_run = vec_pair
    scalar_sim, scalar_run = scalar_pair
    assert vec_run.outputs == scalar_run.outputs
    assert vec_run.trace == scalar_run.trace
    assert vec_run.dangling_nets == scalar_run.dangling_nets
    assert vec_run.all_cells_reinitialised == scalar_run.all_cells_reinitialised
    assert vec_sim.simulator.events_processed == scalar_sim.simulator.events_processed


@pytest.mark.parametrize(("family", "variant"), UNITS, ids=lambda u: str(u))
def test_vectorized_matches_scalar_on_family_x_variant(family, variant, synthesized):
    netlist = synthesized[(family, variant)].netlist
    vec = _drive(netlist, vectorize=None)
    scalar = _drive(netlist, vectorize=False)
    _assert_identical(vec, scalar)
    assert scalar[0].simulator.vectorized_runs == 0
    if not vec[0].is_sequential:
        # Combinational batches must actually ride the fast path.
        assert vec[0].simulator.vectorized_runs == _EXPECTED_VEC


@pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
def test_vectorized_matches_reference_core(family, synthesized):
    """Replay the vectorized run's raw stimulus through the reference oracle."""
    netlist = synthesized[(family, "default")].netlist
    sim, run = _drive(netlist, vectorize=None)
    reference = ReferencePulseSimulator()
    reference.add_elements(build_simulator(netlist)[0].elements)
    driven = {net for cell in netlist.cells for net in cell.outputs}
    raw_stimulus = {
        net: times for net, times in run.trace.items() if net not in driven
    }
    assert reference.run(raw_stimulus) == run.trace
    assert reference.dangling_nets() == sim.simulator.dangling_nets()


@pytest.mark.parametrize(
    "fault_kwargs",
    [
        {"drop_rate": 0.08},
        {"dup_rate": 0.08},
        {"jitter": 6.0},
        {"skew": 4.0},
    ],
    ids=lambda kw: next(iter(kw)),
)
@pytest.mark.parametrize("family", ["dag", "fsm"])
def test_fault_kinds_fall_back_to_scalar_bit_identically(
    family, fault_kwargs, synthesized
):
    """All four fault kinds at nonzero magnitude: positional RNG streams
    force the scalar core, and both vectorize settings agree byte-for-byte."""
    netlist = synthesized[(family, "default")].netlist
    vec = _drive(netlist, vectorize=None, fault_model=FaultModel(seed=3, **fault_kwargs))
    scalar = _drive(
        netlist, vectorize=False, fault_model=FaultModel(seed=3, **fault_kwargs)
    )
    _assert_identical(vec, scalar)
    assert vec[0].simulator.vectorized_runs == 0  # faults never vectorize
    assert json.dumps(vec[1].trace, sort_keys=True) == json.dumps(
        scalar[1].trace, sort_keys=True
    )


def test_reset_replay_is_bit_identical(synthesized):
    netlist = synthesized[("dag", "default")].netlist
    sim, _ = _drive(netlist, vectorize=None)
    vectors = [
        {name: (i >> k) & 1 for k, name in enumerate(sim.pi_names)}
        for i in range(9)
    ]
    runs = [sim.run_combinational(vectors) for _ in range(2)]
    assert runs[0].outputs == runs[1].outputs
    assert runs[0].trace == runs[1].trace
    assert sim.simulator.vectorized_runs == 3 * _EXPECTED_VEC  # drive + replays


def test_split_until_resume_matches_one_shot(synthesized):
    """A run stopped mid-batch resumes on the scalar loop; the combined
    trace must equal the one-shot vectorized trace."""
    netlist = synthesized[("dag", "default")].netlist
    sim = BatchedNetlistSimulator(netlist, full_trace=True, vectorize=None)
    rng = random.Random(8)
    vectors = [{n: rng.randint(0, 1) for n in sim.pi_names} for _ in range(6)]
    one_shot = sim.run_combinational(vectors)
    assert sim.simulator.vectorized_runs == _EXPECTED_VEC

    split = BatchedNetlistSimulator(netlist, full_trace=True, vectorize=None)
    period = split.phase_period
    # Rebuild the exact stimulus run_combinational would, then split it.
    split.simulator.reset()
    stimulus = {}
    constants = _constant_nets(netlist)
    for cycle, vector in enumerate(vectors):
        excite, relax = (2 * cycle) * period, (2 * cycle + 1) * period
        for pi in split.pi_names:
            _drive_input(stimulus, pi, vector.get(pi, 0), excite, relax, offset=1.0)
        _drive_constants(stimulus, constants, excite, relax, offset=1.0)
    total = 2 * len(vectors) * period + period
    split.simulator.run(stimulus, until=total / 3)
    trace = split.simulator.run(None, until=total)
    assert split.simulator.vectorized_runs == 0  # mid-batch stop forces scalar
    assert {k: v for k, v in trace.items() if v} == one_shot.trace
    assert split.simulator.events_processed == sim.simulator.events_processed


def test_observe_only_restriction_under_soa(synthesized):
    netlist = synthesized[("dag", "default")].netlist
    observed_sim, observed = _drive(netlist, vectorize=None, full_trace=False)
    full_sim, full = _drive(netlist, vectorize=None, full_trace=True)
    assert observed_sim.simulator.vectorized_runs == _EXPECTED_VEC
    output_nets = {port.net for port in netlist.output_ports}
    assert set(observed.trace) <= output_nets
    assert observed.outputs == full.outputs
    for net in observed.trace:
        assert observed.trace[net] == full.trace[net]
    # Unobserved pulses still count as events and still flag dangling nets.
    assert observed_sim.simulator.events_processed == full_sim.simulator.events_processed
    assert observed.dangling_nets == full.dangling_nets


def test_zero_pattern_batch(synthesized):
    netlist = synthesized[("arith", "default")].netlist
    vec_sim = BatchedNetlistSimulator(netlist, vectorize=None)
    vec_run = vec_sim.run_combinational([])
    scalar_sim = BatchedNetlistSimulator(netlist, vectorize=False)
    scalar_run = scalar_sim.run_combinational([])
    assert vec_run.outputs == scalar_run.outputs == []
    assert vec_run.trace == scalar_run.trace == {}
    assert vec_sim.simulator.events_processed == scalar_sim.simulator.events_processed == 0


def _hand_built_pair(vectorize):
    """Tiny feed-forward circuit with a dangling splitter leg and a merger."""
    sim = PulseSimulator()
    sim.vectorize = vectorize
    sim.add_element(SplitterCell("s0", ["a"], ["a1", "a2"], 1.5))
    sim.add_element(LaCell("la0", ["a1", "b"], ["x"], 2.0))
    sim.add_element(FaCell("fa0", ["a2", "c"], ["y"], 2.5))
    sim.add_element(MergerCell("m0", ["x", "y"], ["z"], 0.5))
    sim.add_element(SourceCell("src", "c", [4.0, 30.0]))
    stimulus = {"a": [1.0, 20.0], "b": [3.0, 21.0], "dangling_in": [2.0]}
    trace = sim.run(stimulus, until=100.0)
    return sim, {k: list(v) for k, v in trace.items()}


def test_hand_built_feed_forward_circuit_matches_scalar():
    # vectorize=True insists on the fast path even when the environment
    # forces scalar kernels — the explicit toggle always wins.
    vec_sim, vec_trace = _hand_built_pair(vectorize=True)
    scalar_sim, scalar_trace = _hand_built_pair(vectorize=False)
    assert vec_sim.vectorized_runs == 1
    assert scalar_sim.vectorized_runs == 0
    assert vec_trace == scalar_trace
    assert vec_sim.dangling_nets() == scalar_sim.dangling_nets()
    assert "dangling_in" in vec_sim.dangling_nets()
    assert "z" in vec_sim.dangling_nets()
    assert vec_sim.events_processed == scalar_sim.events_processed
    assert vec_sim.trace("z") == scalar_sim.trace("z")


def test_int_stimulus_times_fall_back_to_scalar():
    """Scalar traces preserve int stimulus times; the fast path must not
    silently convert them to floats."""
    sim = PulseSimulator()
    sim.add_element(SplitterCell("s0", ["a"], ["b", "c"], 1.0))
    trace = sim.run({"a": [1, 2]}, until=10.0)
    assert sim.vectorized_runs == 0
    assert trace["a"] == [1, 2]
    assert all(isinstance(t, int) for t in trace["a"])


SUBPROCESS_SNIPPET = r"""
import hashlib, json
from repro.core import flow_variant
from repro.gen import generate_specs
from repro.sim.pulse import BatchedNetlistSimulator
from repro.verify import stimulus_suite

spec = generate_specs(1, seed=13, families=["dag"])[0]
result = flow_variant("default").run(spec.build())
sim = BatchedNetlistSimulator(result.netlist, full_trace=True)
suite = stimulus_suite(sim.pi_names, num_patterns=16, seed=4)
run = sim.run_combinational(suite.as_dicts())
payload = json.dumps(
    {"trace": run.trace, "outputs": run.outputs},
    sort_keys=True,
)
print(hashlib.sha256(payload.encode()).hexdigest())
"""


def _subprocess_digest(hash_seed, scalar):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if scalar:
        env["REPRO_SCALAR_KERNELS"] = "1"
    else:
        env.pop("REPRO_SCALAR_KERNELS", None)
    proc = subprocess.run(
        [sys.executable, "-c", SUBPROCESS_SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout.strip()


@pytest.mark.parametrize("scalar", [False, True], ids=["vectorized", "scalar-forced"])
def test_trace_bytes_stable_across_hash_seeds(scalar):
    """PYTHONHASHSEED-varied subprocesses produce byte-identical traces,
    with and without the SoA fast path."""
    digests = {_subprocess_digest(seed, scalar) for seed in ("0", "31337")}
    assert len(digests) == 1


def test_scalar_forced_subprocess_matches_vectorized_subprocess():
    """The scalar and vectorized kernels agree byte-for-byte end to end."""
    assert _subprocess_digest("7", scalar=False) == _subprocess_digest("7", scalar=True)
