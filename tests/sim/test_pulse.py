"""Tests for the pulse-level simulator: cell models, simulator core, netlist simulation."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowOptions, synthesize_xsfq
from repro.eval import counter_network, full_adder_network
from repro.sim.pulse import (
    DroCell,
    DrocCell,
    FaCell,
    LaCell,
    MergerCell,
    PulseSimulator,
    SimulationError,
    SplitterCell,
    reference_start_state,
    simulate_combinational,
    simulate_sequential,
)


class TestCellModels:
    def test_la_fires_on_last_arrival_only(self):
        la = LaCell("la", ["a", "b"], ["q"], delay=1.0)
        assert la.on_pulse(0, 0.0) == []
        assert la.on_pulse(1, 5.0) == [("q", 6.0)]
        assert la.is_initial_state()

    def test_fa_fires_on_first_arrival_and_absorbs_second(self):
        fa = FaCell("fa", ["a", "b"], ["q"], delay=2.0)
        assert fa.on_pulse(1, 3.0) == [("q", 5.0)]
        assert fa.on_pulse(0, 4.0) == []
        assert fa.is_initial_state()

    def test_table1_alternating_sequences(self):
        """Paper Table 1: after excite + relax both cells are back to Init."""
        for a, b in itertools.product((0, 1), repeat=2):
            la = LaCell("la", ["a", "b"], ["q"], 0.0)
            fa = FaCell("fa", ["a", "b"], ["q"], 0.0)
            for cell, expected_excite in ((la, a & b), (fa, a | b)):
                fired = 0
                if a:
                    fired += len(cell.on_pulse(0, 0.0))
                if b:
                    fired += len(cell.on_pulse(1, 1.0))
                assert fired == expected_excite
                # Relax phase: complements arrive.
                if not a:
                    cell.on_pulse(0, 10.0)
                if not b:
                    cell.on_pulse(1, 11.0)
                assert cell.is_initial_state()

    def test_splitter_and_merger(self):
        splitter = SplitterCell("s", ["a"], ["x", "y"], 1.0)
        assert splitter.on_pulse(0, 0.0) == [("x", 1.0), ("y", 1.0)]
        merger = MergerCell("m", ["a", "b"], ["q"], 1.0)
        assert merger.on_pulse(1, 2.0) == [("q", 3.0)]

    def test_dro_cell_captures_and_clears(self):
        dro = DroCell("d", ["d", "clk"], ["q"], 1.0)
        assert dro.on_pulse(1, 1.0) == []            # clock with empty state
        dro.on_pulse(0, 2.0)                          # data arrives
        assert dro.on_pulse(1, 3.0) == [("q", 4.0)]  # clock reads it out
        assert dro.on_pulse(1, 5.0) == []            # destructive readout

    def test_droc_complementary_outputs_and_preload(self):
        droc = DrocCell("d", ["d", "clk"], ["qp", "qn"], 1.0)
        assert droc.on_pulse(1, 1.0) == [("qn", 2.0)]
        droc.on_pulse(0, 3.0)
        assert droc.on_pulse(1, 4.0) == [("qp", 5.0)]
        preloaded = DrocCell("p", ["d", "clk"], ["qp", "qn"], 1.0, preload=True)
        assert preloaded.on_pulse(1, 1.0) == [("qp", 2.0)]


class TestSimulatorCore:
    def test_events_processed_in_time_order(self):
        sim = PulseSimulator()
        la = LaCell("la", ["a", "b"], ["q"], 1.0)
        sim.add_element(la)
        trace = sim.run({"b": [5.0], "a": [2.0]})
        assert trace["q"] == [6.0]

    def test_fanout_to_multiple_elements(self):
        sim = PulseSimulator()
        sim.add_element(SplitterCell("s", ["in"], ["x", "y"], 0.5))
        sim.add_element(MergerCell("m", ["x", "y"], ["out"], 0.5))
        trace = sim.run({"in": [1.0]})
        assert len(trace["out"]) == 2

    def test_until_cutoff(self):
        sim = PulseSimulator()
        sim.add_element(SplitterCell("s", ["in"], ["x", "y"], 10.0))
        trace = sim.run({"in": [1.0]}, until=5.0)
        assert "x" not in trace or not trace["x"]

    def test_reset_clears_state(self):
        sim = PulseSimulator()
        fa = FaCell("fa", ["a", "b"], ["q"], 1.0)
        sim.add_element(fa)
        sim.run({"a": [1.0]})
        sim.reset()
        assert fa.is_initial_state()
        assert sim.trace("q") == []


class TestNetlistSimulation:
    @pytest.fixture(scope="class")
    def fa_result(self):
        return synthesize_xsfq(full_adder_network(), FlowOptions(effort="high"))

    def test_full_adder_exhaustive(self, fa_result):
        vectors = [dict(zip("ab", bits)) | {"cin": bits[2]} for bits in itertools.product((0, 1), repeat=3)]
        sim = simulate_combinational(fa_result.netlist, vectors)
        reference = full_adder_network()
        for vector, outputs in zip(vectors, sim.outputs):
            expected, _ = reference.evaluate(vector)
            assert outputs == {"s": expected["s"], "cout": expected["cout"]}
        assert sim.all_cells_reinitialised

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 2**31))
    def test_random_combinational_circuits_match(self, seed):
        """Pulse-level semantics match the gate-level semantics on random logic."""
        rng = random.Random(seed)
        from repro.netlist import NetworkBuilder

        b = NetworkBuilder("rand")
        signals = [b.input(f"i{k}") for k in range(4)]
        for k in range(10):
            op = rng.choice(["and", "or", "xor", "not"])
            if op == "not":
                signals.append(b.not_(rng.choice(signals)))
            else:
                x, y = rng.sample(signals, 2)
                signals.append(getattr(b, {"and": "and_", "or": "or_", "xor": "xor"}[op])(x, y))
        b.output(signals[-1], "f")
        b.output(signals[-2], "g")
        network = b.finish()
        result = synthesize_xsfq(network, FlowOptions(effort="medium"))
        vectors = [{f"i{k}": rng.randint(0, 1) for k in range(4)} for _ in range(4)]
        sim = simulate_combinational(result.netlist, vectors)
        for vector, outputs in zip(vectors, sim.outputs):
            expected, _ = network.evaluate(vector)
            assert outputs["f"] == expected["f"]
            assert outputs["g"] == expected["g"]

    def test_sequential_counter_matches_reference(self):
        network = counter_network(2)
        result = synthesize_xsfq(network, FlowOptions(effort="medium", retime=False))
        vectors = [{"en": 1}] * 6
        sim = simulate_sequential(result.netlist, vectors)
        state = reference_start_state([latch.name for latch in network.latches])
        for vector, outputs in zip(vectors, sim.outputs):
            expected, state = network.evaluate(vector, state)
            assert outputs == {name: expected[name] for name in outputs}

    def test_sequential_counter_with_enable_gaps(self):
        network = counter_network(2)
        result = synthesize_xsfq(network, FlowOptions(effort="medium", retime=False))
        vectors = [{"en": v} for v in (1, 0, 1, 1, 0, 1)]
        sim = simulate_sequential(result.netlist, vectors)
        state = reference_start_state([latch.name for latch in network.latches])
        for vector, outputs in zip(vectors, sim.outputs):
            expected, state = network.evaluate(vector, state)
            assert outputs == {name: expected[name] for name in outputs}

    def test_wrong_simulator_entry_point_raises(self, fa_result):
        with pytest.raises(SimulationError):
            simulate_sequential(fa_result.netlist, [{"a": 1, "b": 0, "cin": 0}])
        seq = synthesize_xsfq(counter_network(2), FlowOptions(effort="low", retime=False))
        with pytest.raises(SimulationError):
            simulate_combinational(seq.netlist, [{"en": 1}])


@pytest.mark.slow
class TestAnalogModel:
    def test_jtl_propagates_single_pulse_with_delay(self):
        from repro.sim.analog import characterize_jtl

        result = characterize_jtl()
        assert result.output_pulses == 1
        assert result.delay_ps is not None and result.delay_ps > 0

    def test_la_behaves_as_c_element(self):
        from repro.sim.analog import characterize_la

        only_a, both = characterize_la()
        assert only_a.output_pulses == 0
        assert both.output_pulses >= 1

    def test_fa_fires_on_first_arrival(self):
        from repro.sim.analog import characterize_fa

        only_a, _ = characterize_fa()
        assert only_a.output_pulses >= 1
        assert only_a.delay_ps is not None and only_a.delay_ps > 0

    def test_droc_discriminates_stored_flux(self):
        from repro.sim.analog import characterize_droc

        empty, loaded = characterize_droc()
        assert loaded.output_pulses > empty.output_pulses

    def test_quiescent_circuit_emits_no_pulses(self):
        from repro.sim.analog import jtl_chain

        cell = jtl_chain()
        waveforms = cell.circuit.simulate(duration=150e-12)
        assert waveforms.num_pulses(cell.output_node) == 0

    def test_pulse_time_extraction_monotone(self):
        from repro.sim.analog import characterize_jtl

        result = characterize_jtl(num_stages=4)
        times = result.waveforms.pulse_times(3)
        assert times == sorted(times)
