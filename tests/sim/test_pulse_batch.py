"""Batched pulse simulation and simulator-core edge cases.

Covers the pulse-simulator behaviours the verification subsystem depends
on: deterministic tie-breaking of simultaneous pulses, fan-out ordering,
empty stimulus, dangling-net recording, non-destructive ``until`` cut-off,
and — the headline property — that a :class:`BatchedNetlistSimulator`
verifies hundreds of patterns on a single netlist elaboration.
"""

import itertools

import pytest

from repro.core import FlowOptions, synthesize_xsfq
from repro.eval import counter_network, full_adder_network
from repro.sim.pulse import (
    BatchedNetlistSimulator,
    FaCell,
    LaCell,
    MergerCell,
    PulseSimulator,
    SimulationError,
    SplitterCell,
    elaboration_count,
    simulate_combinational,
    suggest_phase_period,
)


class TestSimulatorEdgeCases:
    def test_simultaneous_pulses_processed_in_schedule_order(self):
        """Events at the same time tie-break FIFO on scheduling order."""
        sim = PulseSimulator()
        order = []

        class Probe(FaCell):
            def on_pulse(self, port, time):
                order.append(self.inputs[port])
                return super().on_pulse(port, time)

        sim.add_element(Probe("fa", ["a", "b"], ["q"], 1.0))
        sim.schedule("b", 5.0)
        sim.schedule("a", 5.0)
        sim.run()
        assert order == ["b", "a"]  # exactly the scheduling order, not name order

    def test_fanout_ordering_is_deterministic(self):
        """A split pulse reaches sinks in registration order at equal times."""
        sim = PulseSimulator()
        hits = []

        class Probe(MergerCell):
            def on_pulse(self, port, time):
                hits.append((self.name, port))
                return super().on_pulse(port, time)

        sim.add_element(SplitterCell("s", ["in"], ["x", "x"], 1.0))
        sim.add_element(Probe("m1", ["x", "unused1"], ["o1"], 1.0))
        sim.add_element(Probe("m2", ["x", "unused2"], ["o2"], 1.0))
        sim.run({"in": [0.0]})
        # Both splitter branches land on net "x" at the same time; each
        # delivery fans out to the sinks in their registration order.
        assert hits == [("m1", 0), ("m2", 0), ("m1", 0), ("m2", 0)]

    def test_empty_stimulus_runs_dry(self):
        sim = PulseSimulator()
        sim.add_element(LaCell("la", ["a", "b"], ["q"], 1.0))
        trace = sim.run()
        assert trace == {}
        assert sim.elements_in_initial_state()

    def test_pulses_on_sinkless_nets_are_traced_and_flagged(self):
        """A pulse into the void is recorded, not silently dropped."""
        sim = PulseSimulator()
        sim.add_element(SplitterCell("s", ["in"], ["used", "nowhere"], 1.0))
        sim.add_element(MergerCell("m", ["used", "aux"], ["out"], 1.0))
        trace = sim.run({"in": [0.0]})
        assert trace["nowhere"] == [1.0]
        assert "nowhere" in sim.dangling_nets()
        assert "used" not in sim.dangling_nets()
        assert "out" in sim.dangling_nets()  # nothing consumes the output

    def test_until_cutoff_keeps_late_events_pending(self):
        """Events beyond ``until`` stay queued instead of being dropped."""
        sim = PulseSimulator()
        sim.add_element(SplitterCell("s", ["in"], ["x", "y"], 10.0))
        first = sim.run({"in": [1.0]}, until=5.0)
        assert "x" not in first or not first["x"]
        resumed = sim.run(until=20.0)
        assert resumed["x"] == [11.0] and resumed["y"] == [11.0]

    def test_reset_clears_dangling_records(self):
        sim = PulseSimulator()
        sim.add_element(SplitterCell("s", ["in"], ["a", "b"], 1.0))
        sim.run({"in": [0.0]})
        assert sim.dangling_nets()
        sim.reset()
        assert sim.dangling_nets() == []


class TestBatchedSimulation:
    @pytest.fixture(scope="class")
    def fa_result(self):
        return synthesize_xsfq(full_adder_network(), FlowOptions(effort="high"))

    def test_many_patterns_single_elaboration(self, fa_result):
        """>= 256 patterns must cost exactly one netlist elaboration."""
        vectors = [
            dict(zip(("a", "b", "cin"), bits))
            for bits in itertools.product((0, 1), repeat=3)
        ] * 32  # 256 patterns
        before = elaboration_count()
        sim = BatchedNetlistSimulator(fa_result.netlist)
        run = sim.run_combinational(vectors)
        assert elaboration_count() - before == 1
        assert sim.elaborations == 1
        assert sim.patterns_run == len(run.outputs) == 256

        reference = full_adder_network()
        for vector, outputs in zip(vectors, run.outputs):
            expected, _ = reference.evaluate(vector)
            assert outputs == {"s": expected["s"], "cout": expected["cout"]}

    def test_repeated_batches_reuse_the_elaboration(self, fa_result):
        before = elaboration_count()
        sim = BatchedNetlistSimulator(fa_result.netlist)
        for _ in range(5):
            sim.run_combinational([{"a": 1, "b": 1, "cin": 1}])
        assert elaboration_count() - before == 1
        assert sim.batches_run == 5

    def test_empty_batch(self, fa_result):
        sim = BatchedNetlistSimulator(fa_result.netlist)
        run = sim.run_combinational([])
        assert run.outputs == []

    def test_sequential_trajectories_share_the_elaboration(self):
        network = counter_network(2)
        result = synthesize_xsfq(network, FlowOptions(effort="medium"))
        before = elaboration_count()
        sim = BatchedNetlistSimulator(result.netlist)
        start = result.sequential_info.start_state
        for _ in range(3):
            run = sim.run_sequence([{"en": 1}] * 4)
            state = dict(start)
            for vector, outputs in zip([{"en": 1}] * 4, run.outputs):
                expected, state = network.evaluate(vector, state)
                assert outputs == {name: expected[name] for name in outputs}
        assert elaboration_count() - before == 1

    def test_wrong_entry_points_raise(self, fa_result):
        comb = BatchedNetlistSimulator(fa_result.netlist)
        with pytest.raises(SimulationError):
            comb.run_sequence([{"a": 1}])
        seq_result = synthesize_xsfq(counter_network(2), FlowOptions(effort="low"))
        seq = BatchedNetlistSimulator(seq_result.netlist)
        with pytest.raises(SimulationError):
            seq.run_combinational([{"en": 1}])

    def test_phase_period_scales_with_critical_path(self, fa_result):
        period = suggest_phase_period(fa_result.netlist)
        assert period >= 500.0
        assert period >= fa_result.netlist.critical_path_delay()
        explicit = BatchedNetlistSimulator(fa_result.netlist, phase_period=750.0)
        assert explicit.phase_period == 750.0

    def test_legacy_wrapper_elaborates_per_call(self, fa_result):
        before = elaboration_count()
        simulate_combinational(fa_result.netlist, [{"a": 1, "b": 0, "cin": 0}])
        simulate_combinational(fa_result.netlist, [{"a": 1, "b": 0, "cin": 0}])
        assert elaboration_count() - before == 2
