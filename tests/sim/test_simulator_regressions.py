"""Regression tests for the pulse-simulator core fixes of the perf PR.

Covers the three behavioural guarantees the optimised event loop must
keep: source emissions are injected exactly once per reset (resumed runs
used to duplicate them), traces are monotone without any sorting, and
resets rewind the tie-breaking sequence counter so traces reproduce
bit-identically.  Plus the new observability knobs (restricted capture,
event counters) and the strict golden-simulation contract.
"""

import itertools

import pytest

from repro.aig import network_to_aig
from repro.aig.simulate import simulate_patterns
from repro.core import FlowOptions, synthesize_xsfq
from repro.eval import full_adder_network
from repro.sim.pulse import (
    BatchedNetlistSimulator,
    JtlCell,
    PulseSimulator,
    SourceCell,
    SplitterCell,
    total_events_processed,
)


class TestSourceScheduling:
    def test_resumed_run_does_not_duplicate_source_emissions(self):
        """Satellite bugfix: resuming after ``until`` injects no duplicates."""
        sim = PulseSimulator()
        sim.add_element(SourceCell("src", "stim", [1.0, 6.0]))
        sim.add_element(JtlCell("j", ["stim"], ["out"], 1.0))

        first = sim.run(until=3.0)
        assert first["stim"] == [1.0]
        assert first["out"] == [2.0]
        resumed = sim.run()  # drain the pending 6.0 emission
        assert resumed["stim"] == [1.0, 6.0]
        assert resumed["out"] == [2.0, 7.0]
        # A third call finds nothing new to do.
        assert sim.run() == resumed

    def test_reset_rearms_source_emissions(self):
        sim = PulseSimulator()
        sim.add_element(SourceCell("src", "stim", [1.0]))
        assert sim.run()["stim"] == [1.0]
        sim.reset()
        assert sim.run()["stim"] == [1.0]

    def test_source_added_after_a_run_still_emits(self):
        sim = PulseSimulator()
        sim.add_element(SourceCell("a", "x", [1.0]))
        sim.run()
        sim.add_element(SourceCell("b", "y", [2.0]))
        trace = sim.run()
        assert trace["x"] == [1.0] and trace["y"] == [2.0]


class TestTraceOrdering:
    def test_traces_are_monotone_without_sorting(self):
        """Events pop off the heap in time order; traces need no sort."""
        result = synthesize_xsfq(full_adder_network(), FlowOptions(effort="low"))
        sim = BatchedNetlistSimulator(result.netlist, full_trace=True)
        vectors = [
            dict(zip(("a", "b", "cin"), bits))
            for bits in itertools.product((0, 1), repeat=3)
        ] * 4
        run = sim.run_combinational(vectors)
        assert run.trace, "expected a non-empty trace"
        for net, times in run.trace.items():
            assert times == sorted(times), f"net {net} trace is not monotone"

    def test_reset_does_not_clobber_previously_returned_traces(self):
        """reset() installs fresh buffers; earlier results keep their pulses."""
        sim = PulseSimulator()
        sim.add_element(JtlCell("j", ["a"], ["q"], 1.0))
        first = sim.run({"a": [0.0]})
        assert first["q"] == [1.0]
        sim.reset()
        second = sim.run({"a": [5.0]})
        assert first["q"] == [1.0]  # untouched by the reset + second batch
        assert second["q"] == [6.0]

    def test_batched_results_survive_later_batches(self):
        result = synthesize_xsfq(full_adder_network(), FlowOptions(effort="low"))
        sim = BatchedNetlistSimulator(result.netlist, full_trace=True)
        r1 = sim.run_combinational([{"a": 1, "b": 1, "cin": 1}])
        snapshot = {net: list(times) for net, times in r1.trace.items()}
        sim.run_combinational([{"a": 0, "b": 0, "cin": 0}])
        assert {net: list(times) for net, times in r1.trace.items()} == snapshot

    def test_reset_rewinds_sequence_for_reproducible_traces(self):
        """Same stimulus after reset() -> bit-identical trace (tie-breaks included)."""
        sim = PulseSimulator()
        sim.add_element(SplitterCell("s", ["in"], ["x", "y"], 1.0))
        sim.add_element(JtlCell("jx", ["x"], ["out"], 1.0))
        sim.add_element(JtlCell("jy", ["y"], ["out"], 1.0))
        stimulus = {"in": [0.0, 5.0]}
        first = {net: list(times) for net, times in sim.run(stimulus).items()}
        sim.reset()
        second = sim.run(stimulus)
        assert first == second

    def test_scheduling_behind_the_frontier_raises(self):
        """Resumed runs cannot rewrite history — traces must stay monotone."""
        from repro.sim.pulse import SimulationError

        sim = PulseSimulator()
        sim.add_element(JtlCell("j", ["a"], ["q"], 1.0))
        sim.run({"a": [10.0]})
        with pytest.raises(SimulationError, match="frontier"):
            sim.run({"a": [2.0]})
        with pytest.raises(SimulationError, match="frontier"):
            sim.schedule("a", 2.0)
        sim.reset()  # a reset rewinds the frontier
        assert sim.run({"a": [2.0]})["q"] == [3.0]

    def test_pulses_in_window_counts_half_open_interval(self):
        sim = PulseSimulator()
        sim.add_element(JtlCell("j", ["a"], ["q"], 1.0))
        sim.run({"a": [0.0, 1.0, 2.0]})
        assert sim.pulses_in_window("q", 1.0, 3.0) == 2  # pulses at 1,2,3 -> [1,3)
        assert sim.pulses_in_window("q", 0.0, 10.0) == 3
        assert sim.pulses_in_window("missing", 0.0, 10.0) == 0


class TestObservability:
    def test_observe_only_restricts_capture_but_not_semantics(self):
        sim = PulseSimulator()
        sim.add_element(SplitterCell("s", ["in"], ["mid", "spur"], 1.0))
        sim.add_element(JtlCell("j", ["mid"], ["out"], 1.0))
        sim.observe_only(["out"])
        trace = sim.run({"in": [0.0]})
        assert trace == {"out": [2.0]}
        # Unobserved pulses still propagated and still flag dangling nets.
        assert "spur" in sim.dangling_nets()
        assert sim.trace("mid") == []

    def test_event_counters_accumulate(self):
        sim = PulseSimulator()
        sim.add_element(JtlCell("j", ["a"], ["q"], 1.0))
        before = total_events_processed()
        sim.run({"a": [0.0, 1.0]})
        assert sim.events_processed == 4  # 2 stimulus + 2 emitted
        assert total_events_processed() - before == 4

    def test_batched_simulator_defaults_to_output_only_capture(self):
        result = synthesize_xsfq(full_adder_network(), FlowOptions(effort="low"))
        restricted = BatchedNetlistSimulator(result.netlist)
        run = restricted.run_combinational([{"a": 1, "b": 1, "cin": 0}])
        output_nets = {port.net for port in result.netlist.output_ports}
        assert set(run.trace) <= output_nets
        full = BatchedNetlistSimulator(result.netlist, full_trace=True)
        full_run = full.run_combinational([{"a": 1, "b": 1, "cin": 0}])
        assert set(full_run.trace) > output_nets
        assert run.outputs == full_run.outputs


class TestStrictGoldenSimulation:
    def test_missing_pattern_words_raise_key_error(self):
        """Satellite bugfix: silent zero-fill masked caller bugs."""
        aig = network_to_aig(full_adder_network())
        patterns = {node: 0b1010 for node in aig.pi_nodes}
        missing_node = aig.pi_nodes[-1]
        del patterns[missing_node]
        with pytest.raises(KeyError, match=str(missing_node)):
            simulate_patterns(aig, patterns, 4)

    def test_strict_false_restores_zero_fill(self):
        aig = network_to_aig(full_adder_network())
        values = simulate_patterns(aig, {}, 4, strict=False)
        assert all(values[node] == 0 for node in aig.pi_nodes)

    def test_complete_patterns_simulate_exactly(self):
        aig = network_to_aig(full_adder_network())
        patterns = {node: word for node, word in zip(aig.pi_nodes, (0b0011, 0b0101, 0b0000))}
        values = simulate_patterns(aig, patterns, 4)
        from repro.aig.simulate import lit_values

        outputs = {
            name: lit_values(values, lit, 4)
            for name, lit in zip(aig.po_names, aig.po_lits)
        }
        assert outputs["s"] == 0b0011 ^ 0b0101
        assert outputs["cout"] == 0b0011 & 0b0101
