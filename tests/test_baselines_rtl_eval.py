"""Tests for the RSFQ baselines, the RTL eDSL and the experiment harness."""

import pytest

from repro.baselines import (
    CLOCK_SPLITTING_OVERHEAD,
    BaselineOptions,
    RsfqCellKind,
    clock_splitter_count,
    default_rsfq_library,
    map_rsfq_path_balanced,
    pbmap_like,
    qseq_like,
    rsfq_clock_period_ps,
)
from repro.circuits import ripple_carry_adder, traffic_light_controller
from repro.core import FlowOptions, synthesize_xsfq
from repro.eval import (
    full_adder_network,
    run_figure1,
    run_figure4_5,
    run_figure7,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.netlist import NetworkBuilder
from repro.rtl import RtlModule, Word


class TestRsfqBaseline:
    def test_every_logic_gate_is_clocked(self):
        result = pbmap_like(full_adder_network())
        assert result.num_logic_cells > 0
        assert result.num_clocked_cells >= result.num_logic_cells

    def test_path_balancing_inserts_dffs_on_unbalanced_paths(self):
        b = NetworkBuilder("unbalanced")
        a, c, d = b.input("a"), b.input("c"), b.input("d")
        deep = b.and_(b.and_(a, c), d)
        b.output(b.or_(deep, a), "y")  # 'a' reaches the OR through 0 and 2 levels
        result = map_rsfq_path_balanced(b.finish())
        assert result.num_balancing_dffs >= 2

    def test_balanced_tree_needs_no_balancing_dffs(self):
        b = NetworkBuilder("balanced")
        x = [b.input(f"x{i}") for i in range(4)]
        b.output(b.and_(b.and_(x[0], x[1]), b.and_(x[2], x[3])), "y")
        result = map_rsfq_path_balanced(b.finish(), include_io_balancing=False)
        assert result.num_balancing_dffs == 0

    def test_clock_tree_costs(self):
        assert clock_splitter_count(1) == 0
        assert clock_splitter_count(10) == 9
        result = pbmap_like(ripple_carry_adder(4))
        assert result.num_clock_splitters == result.num_clocked_cells - 1
        assert result.jj_count(include_clock_tree=True) > result.jj_count(include_clock_tree=False)
        assert result.jj_count_with_clock_overhead() == round(
            result.jj_count(include_clock_tree=False) * (1 + CLOCK_SPLITTING_OVERHEAD)
        )

    def test_qseq_counts_state_flipflops(self):
        net = traffic_light_controller(num_ff=9)
        result = qseq_like(net)
        assert result.num_state_dffs == 9

    def test_pbmap_rejects_sequential(self):
        with pytest.raises(ValueError):
            pbmap_like(traffic_light_controller(num_ff=9))

    def test_optimised_baseline_variant_runs(self):
        # Pre-optimising through the AIG is supported but can *hurt* the RSFQ
        # baseline (XOR structure is lost to AND/NOT decomposition), so only
        # the mechanics are checked here; the evaluation uses the raw netlist.
        optimised = pbmap_like(ripple_carry_adder(6), BaselineOptions(optimize_logic=True))
        assert optimised.jj_count() > 0
        assert optimised.num_balancing_dffs >= 0

    def test_clock_period_positive(self):
        assert rsfq_clock_period_ps(pbmap_like(full_adder_network())) > 0

    def test_xsfq_beats_rsfq_on_adders(self):
        """The paper's headline direction: xSFQ needs far fewer JJs."""
        net = ripple_carry_adder(8)
        rsfq = pbmap_like(net)
        xsfq = synthesize_xsfq(net, FlowOptions(effort="low"))
        assert xsfq.jj_count(False) < rsfq.jj_count(include_clock_tree=False)

    def test_library_data_accessible(self):
        lib = default_rsfq_library()
        assert lib.jj_count(RsfqCellKind.DFF) == 6
        assert lib.is_clocked(RsfqCellKind.AND2)
        assert not lib.is_clocked(RsfqCellKind.SPLITTER)
        assert len(lib.cells()) == len(RsfqCellKind)


class TestRtlDsl:
    def test_combinational_expressions(self):
        m = RtlModule("logic")
        a, b = m.input("a"), m.input("b")
        m.output("f", (a & b) | (~a ^ b))
        net = m.elaborate()
        assert net.output_vector({"a": 1, "b": 0}) == (0,)
        assert net.output_vector({"a": 0, "b": 0}) == (1,)

    def test_word_arithmetic_and_mux(self):
        m = RtlModule("datapath")
        x = m.input_word("x", 4)
        y = m.input_word("y", 4)
        select = m.input("sel")
        total = x + y
        m.output_word("z", Word.mux(select, total, x ^ y))
        net = m.elaborate()
        vector = {f"x[{i}]": (5 >> i) & 1 for i in range(4)}
        vector.update({f"y[{i}]": (6 >> i) & 1 for i in range(4)})
        outputs, _ = net.evaluate({**vector, "sel": 0})
        assert sum(outputs[f"z[{i}]"] << i for i in range(4)) == (5 + 6) & 0xF
        outputs, _ = net.evaluate({**vector, "sel": 1})
        assert sum(outputs[f"z[{i}]"] << i for i in range(4)) == 5 ^ 6

    def test_register_accumulator(self):
        m = RtlModule("acc")
        enable = m.input("enable")
        data = m.input_word("data", 4)
        acc = m.register_word("acc", 4)
        acc.next_value(Word.mux(enable, acc, acc + data))
        m.output_word("total", acc)
        net = m.elaborate()
        stimulus = [{"enable": 1, **{f"data[{i}]": (3 >> i) & 1 for i in range(4)}}] * 3
        trace = net.simulate_sequence(stimulus)
        totals = [sum(t[f"total[{i}]"] << i for i in range(4)) for t in trace]
        assert totals == [0, 3, 6]

    def test_rtl_to_xsfq_flow(self):
        m = RtlModule("rtl_flow")
        a = m.input_word("a", 4)
        b = m.input_word("b", 4)
        m.output("eq", a.equals(b))
        result = synthesize_xsfq(m.elaborate(), FlowOptions(effort="medium"))
        assert result.num_la_fa > 0
        result.netlist.validate()


class TestExperimentRunners:
    def test_table1_properties(self):
        summary = run_table1().summary
        assert summary["la_matches_and"] and summary["fa_matches_or"] and summary["all_reinitialised"]

    def test_figure1_roundtrip(self):
        assert run_figure1().summary["roundtrip_ok"]

    def test_table2_lists_library(self):
        assert run_table2().summary["num_cells"] >= 5

    def test_figure4_5_matches_paper_exactly(self):
        result = run_figure4_5()
        assert result.summary["min_aig_nodes"] == result.summary["paper_min_aig_nodes"] == 7
        assert result.summary["matches_paper"]

    def test_table3_shape(self):
        result = run_table3(scale="quick", effort="low")
        assert result.summary["all_below_direct_mapping"]
        penalties = {row["circuit"]: row["duplication"] for row in result.rows}
        assert penalties["voter"] > 0.5  # the paper's pathological case
        assert penalties["dec"] <= 0.1

    def test_table4_shape_on_subset(self):
        result = run_table4(scale="quick", effort="low", circuits=["c880", "dec", "priority"])
        assert result.summary["xsfq_always_wins"]
        assert result.summary["no_storage_cells"]
        assert result.summary["mean_savings"] > 1.5

    def test_table5_shape(self):
        result = run_table5(scale="quick", effort="low", stages=(0, 1))
        assert result.summary["depth_shrinks"]
        assert result.summary["frequency_grows"]
        assert result.summary["jj_growth_monotonic"]

    def test_table6_shape_on_subset(self):
        result = run_table6(scale="quick", effort="low", circuits=["s27", "s298", "s386"])
        assert result.summary["xsfq_always_wins"]
        assert result.summary["preloaded_matches_flipflops"]

    def test_figure7_counter(self):
        result = run_figure7(num_cycles=6, effort="low")
        assert result.summary["matches_expected"]
        assert result.summary["trigger_used"]
        assert result.summary["wraps_around"]
