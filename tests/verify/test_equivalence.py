"""Verification subsystem tests: verdicts, counterexamples, stage, campaign."""

import pytest

import repro
from repro.circuits import build
from repro.core import Flow, FlowError, FlowOptions, synthesize_xsfq
from repro.core.cells import CellKind
from repro.core.flowgraph import FlowState
from repro.eval import ResultCache, Runner
from repro.sim.pulse import elaboration_count
from repro.verify import (
    VerificationSpec,
    VerificationVerdict,
    catalog_specs,
    verification_record,
    verify_result,
)
from repro.verify.flowstage import verify_stage


@pytest.fixture(scope="module")
def c880():
    return build("c880", "quick")


@pytest.fixture(scope="module")
def c880_result(c880):
    return Flow.default().run(c880)


class TestVerifyResult:
    def test_combinational_256_patterns_one_elaboration(self, c880, c880_result):
        """Acceptance regression: >=256 patterns, one netlist elaboration."""
        before = elaboration_count()
        verdict = verify_result(c880_result, golden=c880, patterns=256, seed=0)
        assert verdict.status == "equivalent"
        assert verdict.patterns >= 256
        assert verdict.elaborations == 1
        assert elaboration_count() - before == 1

    def test_small_circuit_verified_exhaustively(self):
        network = build("ctrl", "quick")
        result = Flow.default().run(network)
        verdict = verify_result(result, golden=network, patterns=256)
        assert verdict.status == "equivalent"
        assert verdict.mode == "exhaustive"
        assert verdict.patterns == 2 ** len(network.inputs)

    def test_sequential_circuit_with_retiming(self):
        """The default (retimed) sequential flow is pulse-faithful."""
        network = build("s27", "quick")
        result = Flow.default().run(network)
        assert result.sequential_info.cut_level is not None  # retime happened
        verdict = verify_result(result, golden=network, patterns=256, seed=1)
        assert verdict.status == "equivalent"
        assert verdict.patterns >= 256
        assert verdict.elaborations == 1

    def test_negative_polarity_start_state_recorded(self):
        """s27's Q1 captures its negative next-state rail -> starts at 0."""
        network = build("s27", "quick")
        result = synthesize_xsfq(network, FlowOptions(effort="low", retime=False))
        start = result.sequential_info.start_state
        assert set(start) == {latch.name for latch in network.latches}
        assert 0 in start.values()  # the historic all-ones convention is wrong here
        verdict = verify_result(result, golden=network, patterns=128, seed=2)
        assert verdict.status == "equivalent"

    def test_counterexample_with_first_divergence_net(self, c880):
        result = Flow.default().run(c880)
        corrupted = next(c for c in result.netlist.cells if c.kind is CellKind.LA)
        corrupted.kind = CellKind.FA  # AND becomes OR on one rail
        verdict = verify_result(result, golden=c880, patterns=256, seed=0)
        assert verdict.status == "counterexample"
        assert not verdict.equivalent
        cex = verdict.counterexample
        assert cex is not None
        assert set(cex.inputs) == set(c880.inputs)
        expected, _ = c880.evaluate(cex.inputs)
        assert expected[cex.output] == cex.expected != cex.observed
        assert verdict.first_divergence_net is not None
        assert "pattern" in verdict.summary()

    def test_verdict_round_trips_through_json(self, c880, c880_result):
        verdict = verify_result(c880_result, golden=c880, patterns=32, seed=0)
        clone = VerificationVerdict.from_dict(verdict.to_dict())
        assert clone.status == verdict.status
        assert clone.patterns == verdict.patterns
        assert clone.to_dict() == verdict.to_dict()

    def test_pipelined_results_are_skipped(self):
        network = build("c880", "quick")
        flow = Flow.from_options(FlowOptions(effort="low", pipeline_stages=2))
        result = flow.run(network)
        verdict = verify_result(result, golden=network, patterns=16)
        assert verdict.status == "skipped"
        assert verdict.reason


class TestVerifyStage:
    def test_registered_in_the_stage_registry(self):
        assert "verify" in repro.STAGES
        flow = Flow.default().with_stage("verify", {"patterns": 16})
        assert flow.stage_names()[-1] == "verify"

    def test_flow_ending_in_verdict(self):
        flow = Flow.default().with_stage("verify", {"patterns": 64})
        # Bypass the process-wide stage cache: resuming from a cached
        # mid-flow snapshot legitimately drops the source network (the
        # stage then verifies against the mapped AIG), and whether this
        # circuit is cached depends on which tests ran before.
        state = flow.run_state(build("int2float", "quick"), use_stage_cache=False)
        verdict = state.artifacts["verification"]
        assert verdict.equivalent
        assert state.metrics["verification"]["status"] == "equivalent"
        assert state.metrics["verification_golden"] == "source-network"

    def test_strict_counterexample_aborts_the_flow(self, c880):
        result = Flow.default().run(c880)
        broken = next(c for c in result.netlist.cells if c.kind is CellKind.LA)
        broken.kind = CellKind.FA
        state = FlowState(name="c880", network=c880, aig=result.aig,
                          netlist=result.netlist, result=result)
        with pytest.raises(FlowError, match="verification failed"):
            verify_stage(state, {"patterns": 64, "seed": 0,
                                 "sequence_length": 8, "strict": True})
        lax = verify_stage(state, {"patterns": 64, "seed": 0,
                                   "sequence_length": 8, "strict": False})
        assert lax.artifacts["verification"].status == "counterexample"

    def test_stage_requires_a_result(self):
        with pytest.raises(FlowError, match="report"):
            verify_stage(FlowState(name="x"), {"patterns": 8, "seed": 0,
                                               "sequence_length": 8, "strict": True})


class TestCampaign:
    def test_spec_keys_are_content_addressed(self):
        a = VerificationSpec.create("ctrl", patterns=64, seed=0)
        b = VerificationSpec.create("ctrl", patterns=64, seed=0)
        assert a.key() == b.key()
        assert a.key() != VerificationSpec.create("ctrl", patterns=64, seed=1).key()
        assert a.key() != VerificationSpec.create("ctrl", patterns=128, seed=0).key()
        other_flow = Flow.from_options(FlowOptions(effort="none"))
        assert a.key() != VerificationSpec.create("ctrl", flow=other_flow,
                                                  patterns=64, seed=0).key()

    def test_specs_survive_flow_round_trip(self):
        spec = VerificationSpec.create("s27", patterns=32, seed=3)
        assert spec.flow().signature() == Flow.default().signature()

    def test_catalog_specs_cover_the_registry(self):
        specs = catalog_specs(patterns=16)
        assert {spec.circuit for spec in specs} == set(repro.CATALOG)
        subset = catalog_specs(circuits=["ctrl", "s27"], patterns=16)
        assert [spec.circuit for spec in subset] == ["ctrl", "s27"]

    def test_verification_record_is_json_flat(self):
        record = verification_record(VerificationSpec.create("ctrl", patterns=32))
        assert record["status"] == "equivalent"
        assert record["kind"] == "combinational"
        assert record["circuit"] == "ctrl"
        import json

        json.dumps(record)  # must be serialisable as-is

    def test_runner_campaign_caches_verdicts(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = Runner(jobs=1, cache=cache)
        specs = catalog_specs(circuits=["ctrl", "s27"], patterns=32, seed=0)
        cold = runner.verify(specs)
        assert cold.all_equivalent
        assert cold.computed == 2 and cold.cached == 0
        assert [r["circuit"] for r in cold.records] == ["ctrl", "s27"]

        warm = Runner(jobs=1, cache=cache).verify(specs)
        assert warm.computed == 0 and warm.cached == 2
        assert warm.records == cold.records

    def test_parallel_campaign_matches_serial(self, tmp_path):
        specs = catalog_specs(circuits=["int2float", "dec"], patterns=32, seed=0)
        serial = Runner(jobs=1, cache=None).verify(specs)
        parallel = Runner(jobs=2, cache=None).verify(specs)

        def strip(rows):
            return [
                {k: v for k, v in r.items() if k not in ("seconds", "synth_seconds")}
                for r in rows
            ]

        assert strip(serial.records) == strip(parallel.records)

    def test_report_table_lists_every_circuit(self):
        specs = catalog_specs(circuits=["ctrl"], patterns=16)
        report = Runner(jobs=1, cache=None).verify(specs)
        table = report.table()
        assert "ctrl" in table and "EQUIVALENT" in table
        summary = report.to_dict()["summary"]
        assert summary["all_equivalent"] is True
        assert summary["circuits"] == 1
