"""Stimulus-suite tests: exhaustiveness, corners, reproducibility."""

import multiprocessing

from repro.verify import StimulusSuite, stimulus_suite
from repro.verify.stimulus import _corner_vectors


class TestExhaustive:
    def test_small_input_space_is_enumerated(self):
        suite = stimulus_suite(["a", "b", "c"], num_patterns=256, seed=3)
        assert suite.mode == "exhaustive"
        assert len(suite) == 8
        assert sorted(set(suite.vectors)) == sorted(suite.vectors)  # all distinct
        assert set(suite.vectors) == {
            (a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)
        }

    def test_budget_caps_exhaustive(self):
        suite = stimulus_suite([f"i{k}" for k in range(10)], num_patterns=256, seed=0)
        assert suite.mode == "random+corners"
        assert len(suite) == 256

    def test_exhaustive_can_be_disabled(self):
        suite = stimulus_suite(["a", "b"], num_patterns=16, seed=0, allow_exhaustive=False)
        assert suite.mode == "random+corners"
        assert len(suite) == 16  # repeats allowed: trajectory cycles may recur


class TestCorners:
    def test_directed_corners_lead_the_random_suite(self):
        names = [f"i{k}" for k in range(12)]
        suite = stimulus_suite(names, num_patterns=64, seed=1)
        n = len(names)
        assert suite.vectors[0] == tuple([0] * n)
        assert suite.vectors[1] == tuple([1] * n)
        corners = set(_corner_vectors(n))
        assert corners <= set(suite.vectors[: len(corners)])

    def test_random_fill_is_deduplicated(self):
        suite = stimulus_suite([f"i{k}" for k in range(9)], num_patterns=200, seed=5)
        assert len(set(suite.vectors)) == len(suite.vectors)


class TestReproducibility:
    def test_same_arguments_same_suite(self):
        a = stimulus_suite([f"i{k}" for k in range(20)], num_patterns=128, seed=42)
        b = stimulus_suite([f"i{k}" for k in range(20)], num_patterns=128, seed=42)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        a = stimulus_suite([f"i{k}" for k in range(20)], num_patterns=128, seed=0)
        b = stimulus_suite([f"i{k}" for k in range(20)], num_patterns=128, seed=1)
        assert a.fingerprint() != b.fingerprint()
        assert a.vectors != b.vectors

    def test_reproducible_across_process_boundaries(self):
        """Workers regenerate bit-identical suites from (inputs, n, seed)."""
        local = stimulus_suite([f"i{k}" for k in range(18)], num_patterns=96, seed=7)
        with multiprocessing.Pool(2) as pool:
            remote = pool.map(_suite_fingerprint_worker, [7, 7, 8])
        assert remote[0] == remote[1] == local.fingerprint()
        assert remote[2] != local.fingerprint()


def _suite_fingerprint_worker(seed: int) -> str:
    return stimulus_suite(
        [f"i{k}" for k in range(18)], num_patterns=96, seed=seed
    ).fingerprint()


class TestAccessors:
    def test_packed_words_round_trip(self):
        suite = stimulus_suite(["x", "y"], num_patterns=4, seed=0)
        words = suite.packed_words()
        for index, vector in enumerate(suite.vectors):
            for name, value in zip(suite.inputs, vector):
                assert (words[name] >> index) & 1 == value

    def test_vector_dicts(self):
        suite = stimulus_suite(["x", "y"], num_patterns=4, seed=0)
        assert suite.as_dicts()[0] == suite.vector_dict(0)
        assert set(suite.vector_dict(0)) == {"x", "y"}

    def test_sequences_drop_ragged_tail(self):
        suite = StimulusSuite(("a",), ((0,), (1,), (0,), (1,), (1,)), seed=0, mode="random+corners")
        chunks = list(suite.sequences(2))
        assert len(chunks) == 2
        assert all(len(chunk) == 2 for chunk in chunks)
